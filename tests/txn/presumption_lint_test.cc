// Presumption-consistency lint: the PCP table crossed with the
// coordinator's fixed presumption must flag exactly the pairings Theorem 1
// proves unsafe, and nothing else.

#include <gtest/gtest.h>

#include "protocol/protocol_traits.h"
#include "txn/pcp_table.h"

namespace prany {
namespace {

PcpTable MixedPcp() {
  PcpTable pcp;
  Status s1 = pcp.RegisterSite(1, ProtocolKind::kPrA);
  Status s2 = pcp.RegisterSite(2, ProtocolKind::kPrC);
  Status s3 = pcp.RegisterSite(3, ProtocolKind::kPrN);
  EXPECT_TRUE(s1.ok() && s2.ok() && s3.ok());
  return pcp;
}

TEST(PresumptionLintTest, AbortPresumingCoordinatorsFlagPrC) {
  // PrN, PrA and U2PC-native-PrN/PrA coordinators all answer forgotten
  // inquiries with abort; the PrC participant relies on presumed commit.
  PcpTable pcp = MixedPcp();
  for (auto [kind, native] :
       {std::pair{ProtocolKind::kPrN, ProtocolKind::kPrN},
        std::pair{ProtocolKind::kPrA, ProtocolKind::kPrN},
        std::pair{ProtocolKind::kU2PC, ProtocolKind::kPrN},
        std::pair{ProtocolKind::kU2PC, ProtocolKind::kPrA}}) {
    std::vector<PresumptionLintFinding> findings =
        LintPresumptions(pcp, kind, native);
    ASSERT_EQ(findings.size(), 1u) << ToString(kind);
    EXPECT_EQ(findings[0].site, 2u);
    EXPECT_EQ(findings[0].participant, ProtocolKind::kPrC);
    EXPECT_EQ(findings[0].participant_relies_on, Outcome::kCommit);
    EXPECT_EQ(findings[0].coordinator_presumes, Outcome::kAbort);
    EXPECT_FALSE(findings[0].description.empty());
  }
}

TEST(PresumptionLintTest, CommitPresumingCoordinatorsFlagPrA) {
  PcpTable pcp = MixedPcp();
  for (auto [kind, native] :
       {std::pair{ProtocolKind::kPrC, ProtocolKind::kPrN},
        std::pair{ProtocolKind::kU2PC, ProtocolKind::kPrC}}) {
    std::vector<PresumptionLintFinding> findings =
        LintPresumptions(pcp, kind, native);
    ASSERT_EQ(findings.size(), 1u) << ToString(kind);
    EXPECT_EQ(findings[0].site, 1u);
    EXPECT_EQ(findings[0].participant, ProtocolKind::kPrA);
    EXPECT_EQ(findings[0].participant_relies_on, Outcome::kAbort);
    EXPECT_EQ(findings[0].coordinator_presumes, Outcome::kCommit);
  }
}

TEST(PresumptionLintTest, PrAnyAndC2pcHaveNoFixedPresumption) {
  PcpTable pcp = MixedPcp();
  EXPECT_TRUE(LintPresumptions(pcp, ProtocolKind::kPrAny).empty());
  EXPECT_TRUE(LintPresumptions(pcp, ProtocolKind::kC2PC).empty());
}

TEST(PresumptionLintTest, PrNParticipantsAreNeverFlagged) {
  PcpTable pcp;
  Status s = pcp.RegisterSite(1, ProtocolKind::kPrN);
  ASSERT_TRUE(s.ok());
  for (ProtocolKind kind :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC,
        ProtocolKind::kU2PC}) {
    EXPECT_TRUE(LintPresumptions(pcp, kind).empty()) << ToString(kind);
  }
}

TEST(PresumptionLintTest, HomogeneousDeploymentsAreClean) {
  // The self-consistent pairings: each base coordinator over participants
  // of its own protocol.
  for (ProtocolKind kind :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    PcpTable pcp;
    Status s1 = pcp.RegisterSite(1, kind);
    Status s2 = pcp.RegisterSite(2, kind);
    ASSERT_TRUE(s1.ok() && s2.ok());
    EXPECT_TRUE(LintPresumptions(pcp, kind).empty()) << ToString(kind);
  }
}

TEST(PresumptionLintTest, ConstexprModelMatchesRuntimeTraits) {
  // The lint's compile-time table must agree with the runtime traits the
  // engines actually consult.
  for (ProtocolKind kind :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    const ParticipantTraits& rt = TraitsFor(kind);
    ParticipantTraits ct = BaseTraits(kind);
    EXPECT_EQ(ct.ack_commit, rt.ack_commit) << ToString(kind);
    EXPECT_EQ(ct.ack_abort, rt.ack_abort) << ToString(kind);
    EXPECT_EQ(ct.force_commit_record, rt.force_commit_record)
        << ToString(kind);
    EXPECT_EQ(ct.force_abort_record, rt.force_abort_record)
        << ToString(kind);

    // Reliance outcome == the outcome whose ack (and forced decision
    // record) the participant skips.
    std::optional<Outcome> reliance = ParticipantRelianceOutcome(kind);
    if (!rt.ack_abort) {
      EXPECT_EQ(reliance, Outcome::kAbort);
    } else if (!rt.ack_commit) {
      EXPECT_EQ(reliance, Outcome::kCommit);
    } else {
      EXPECT_FALSE(reliance.has_value());
    }
  }
}

}  // namespace
}  // namespace prany
