// Definition 2 (safe state) evaluated over synthetic and recorded
// histories.

#include "core/safe_state.h"

#include <map>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace prany {
namespace {

SigEvent Decide(TxnId txn, Outcome o) {
  return SigEvent{.type = SigEventType::kCoordDecide,
                  .site = 0,
                  .txn = txn,
                  .outcome = o};
}
SigEvent Forget(TxnId txn) {
  return SigEvent{.type = SigEventType::kCoordForget, .site = 0, .txn = txn};
}
SigEvent Respond(TxnId txn, Outcome o, SiteId peer, bool presumed) {
  return SigEvent{.type = SigEventType::kCoordRespond,
                  .site = 0,
                  .txn = txn,
                  .outcome = o,
                  .peer = peer,
                  .by_presumption = presumed};
}

TEST(SafeStateTest, EmptyHistoryIsSafe) {
  EventLog history;
  SafeStateReport report = SafeStateChecker::Check(history);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.txns_checked, 0u);
}

TEST(SafeStateTest, DecideWithoutInquiriesIsSafe) {
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Forget(1));
  EXPECT_TRUE(SafeStateChecker::Check(history).ok());
}

TEST(SafeStateTest, MatchingPostForgetResponseIsSafe) {
  // The second clause of Definition 2: committed, and every post-DeletePT
  // inquiry answered commit.
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Forget(1));
  history.Record(Respond(1, Outcome::kCommit, 2, /*presumed=*/true));
  SafeStateReport report = SafeStateChecker::Check(history);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.responses_checked, 1u);
}

TEST(SafeStateTest, ContradictingPostForgetResponseViolates) {
  // The U2PC failure shape: decided abort, forgot, answered commit.
  EventLog history;
  history.Record(Decide(1, Outcome::kAbort));
  history.Record(Forget(1));
  history.Record(Respond(1, Outcome::kCommit, 2, /*presumed=*/true));
  SafeStateReport report = SafeStateChecker::Check(history);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].txn, 1u);
  EXPECT_NE(report.violations[0].description.find("after DeletePT"),
            std::string::npos);
}

TEST(SafeStateTest, PreForgetResponsesMustMatchToo) {
  // Responses from the live protocol table must match by construction; a
  // mismatch is a protocol bug and is flagged (stricter-but-sound
  // reading, documented in the header).
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Respond(1, Outcome::kAbort, 2, /*presumed=*/false));
  EXPECT_FALSE(SafeStateChecker::Check(history).ok());
}

TEST(SafeStateTest, UndecidedTxnMustBeAnsweredAbort) {
  // No decision in H at all (coordinator lost it pre-decision): only the
  // abort presumption is sound.
  EventLog history;
  history.Record(Respond(1, Outcome::kAbort, 2, /*presumed=*/true));
  EXPECT_TRUE(SafeStateChecker::Check(history).ok());
  history.Record(Respond(1, Outcome::kCommit, 3, /*presumed=*/true));
  EXPECT_FALSE(SafeStateChecker::Check(history).ok());
}

TEST(SafeStateTest, TransactionsAreIndependent) {
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Forget(1));
  history.Record(Respond(1, Outcome::kAbort, 2, true));  // violation
  history.Record(Decide(2, Outcome::kAbort));
  history.Record(Forget(2));
  history.Record(Respond(2, Outcome::kAbort, 2, true));  // fine
  SafeStateReport report = SafeStateChecker::Check(history);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].txn, 1u);
  EXPECT_EQ(report.txns_checked, 2u);
}

TEST(SafeStateTest, HoldsForExplainsTheFailure) {
  EventLog history;
  history.Record(Decide(7, Outcome::kAbort));
  history.Record(Forget(7));
  history.Record(Respond(7, Outcome::kCommit, 4, true));
  std::string why;
  EXPECT_FALSE(SafeStateChecker::HoldsFor(history, 7, &why));
  EXPECT_NE(why.find("responded commit"), std::string::npos);
  EXPECT_NE(why.find("abort"), std::string::npos);
  EXPECT_TRUE(SafeStateChecker::HoldsFor(history, 8));  // absent txn
}

TEST(SafeStateTest, MultipleForgetsUseTheFirst) {
  // Forget, recovery re-insertion, forget again: responses after the
  // FIRST forget are already constrained.
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Forget(1));
  history.Record(Decide(1, Outcome::kCommit));  // recovery re-initiation
  history.Record(Forget(1));
  history.Record(Respond(1, Outcome::kCommit, 2, true));
  EXPECT_TRUE(SafeStateChecker::Check(history).ok());
}

SigEvent Enforce(TxnId txn, SiteId site, Outcome o) {
  return SigEvent{.type = SigEventType::kPartEnforce,
                  .site = site,
                  .txn = txn,
                  .outcome = o};
}

/// Pins Check()'s folded two-pass implementation to the reference
/// semantics: for every transaction, Check agrees with HoldsFor on both
/// the verdict and the explanation, and responses_checked counts every
/// response of every known transaction.
void ExpectCheckMatchesHoldsFor(const EventLog& history) {
  SafeStateReport report = SafeStateChecker::Check(history);
  std::map<TxnId, std::string> reported;
  for (const SafeStateViolation& v : report.violations) {
    EXPECT_TRUE(reported.emplace(v.txn, v.description).second)
        << "txn " << v.txn << " reported twice";
  }
  uint64_t txns = 0;
  uint64_t responses = 0;
  for (TxnId txn : history.Txns()) {
    ++txns;
    std::string why;
    const bool holds = SafeStateChecker::HoldsFor(history, txn, &why);
    auto it = reported.find(txn);
    EXPECT_EQ(holds, it == reported.end()) << "verdict mismatch, txn " << txn;
    if (it != reported.end()) {
      EXPECT_EQ(it->second, why) << "explanation mismatch, txn " << txn;
    }
    for (const SigEvent* e : history.ForTxn(txn)) {
      if (e->type == SigEventType::kCoordRespond) ++responses;
    }
  }
  EXPECT_EQ(report.txns_checked, txns);
  EXPECT_EQ(report.responses_checked, responses);
}

TEST(SafeStateTest, CheckMatchesHoldsForOnMixedHistory) {
  // One history exercising every branch the folded pass has to get right:
  // undecided txns, re-decided txns, multiple forgets, matching and
  // contradicting responses, and the stale-inquiry exemption.
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Forget(1));
  history.Record(Respond(1, Outcome::kAbort, 2, true));  // violation
  history.Record(Decide(2, Outcome::kAbort));
  history.Record(Forget(2));
  history.Record(Respond(2, Outcome::kAbort, 3, true));  // fine
  history.Record(Respond(3, Outcome::kCommit, 2, true));  // undecided: bad
  history.Record(Decide(4, Outcome::kAbort));
  history.Record(Enforce(4, 5, Outcome::kAbort));
  history.Record(Forget(4));
  history.Record(Respond(4, Outcome::kCommit, 5, true));  // stale: exempt
  history.Record(Respond(4, Outcome::kCommit, 6, true));  // in doubt: bad
  history.Record(Decide(5, Outcome::kCommit));
  history.Record(Forget(5));
  history.Record(Decide(5, Outcome::kCommit));  // recovery re-initiation
  history.Record(Forget(5));
  history.Record(Respond(5, Outcome::kCommit, 2, true));
  ExpectCheckMatchesHoldsFor(history);
}

TEST(SafeStateTest, CheckMatchesHoldsForOnRandomHistories) {
  // Differential sweep: random event soups must never split the two
  // implementations, whatever order decides/forgets/enforces/responses
  // land in.
  std::mt19937 rng(20260806);
  for (int round = 0; round < 200; ++round) {
    EventLog history;
    const int events = 1 + static_cast<int>(rng() % 40);
    for (int i = 0; i < events; ++i) {
      const TxnId txn = 1 + rng() % 5;
      const SiteId site = static_cast<SiteId>(rng() % 4);
      const Outcome o = (rng() % 2 == 0) ? Outcome::kCommit : Outcome::kAbort;
      switch (rng() % 4) {
        case 0:
          history.Record(Decide(txn, o));
          break;
        case 1:
          history.Record(Forget(txn));
          break;
        case 2:
          history.Record(Enforce(txn, site, o));
          break;
        default:
          history.Record(Respond(txn, o, site, rng() % 2 == 0));
          break;
      }
    }
    ExpectCheckMatchesHoldsFor(history);
  }
}

TEST(SafeStateTest, EndToEndPrAnyHistorySatisfiesDefinition2) {
  // A real recorded history from the adversarial schedule: PrAny's
  // responses must satisfy the criterion (Theorem 3's core argument).
  ScenarioResult r = RunIncompatiblePresumptionScenario(
      ProtocolKind::kPrAny, ProtocolKind::kPrN, Outcome::kCommit);
  EXPECT_TRUE(r.summary.safe_state.ok());
  EXPECT_GT(r.summary.safe_state.responses_checked, 0u);
}

TEST(SafeStateTest, EndToEndU2PCHistoryViolatesDefinition2) {
  ScenarioResult r = RunIncompatiblePresumptionScenario(
      ProtocolKind::kU2PC, ProtocolKind::kPrN, Outcome::kCommit);
  EXPECT_FALSE(r.summary.safe_state.ok());
}

}  // namespace
}  // namespace prany
