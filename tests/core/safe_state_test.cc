// Definition 2 (safe state) evaluated over synthetic and recorded
// histories.

#include "core/safe_state.h"

#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace prany {
namespace {

SigEvent Decide(TxnId txn, Outcome o) {
  return SigEvent{.type = SigEventType::kCoordDecide,
                  .site = 0,
                  .txn = txn,
                  .outcome = o};
}
SigEvent Forget(TxnId txn) {
  return SigEvent{.type = SigEventType::kCoordForget, .site = 0, .txn = txn};
}
SigEvent Respond(TxnId txn, Outcome o, SiteId peer, bool presumed) {
  return SigEvent{.type = SigEventType::kCoordRespond,
                  .site = 0,
                  .txn = txn,
                  .outcome = o,
                  .peer = peer,
                  .by_presumption = presumed};
}

TEST(SafeStateTest, EmptyHistoryIsSafe) {
  EventLog history;
  SafeStateReport report = SafeStateChecker::Check(history);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.txns_checked, 0u);
}

TEST(SafeStateTest, DecideWithoutInquiriesIsSafe) {
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Forget(1));
  EXPECT_TRUE(SafeStateChecker::Check(history).ok());
}

TEST(SafeStateTest, MatchingPostForgetResponseIsSafe) {
  // The second clause of Definition 2: committed, and every post-DeletePT
  // inquiry answered commit.
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Forget(1));
  history.Record(Respond(1, Outcome::kCommit, 2, /*presumed=*/true));
  SafeStateReport report = SafeStateChecker::Check(history);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.responses_checked, 1u);
}

TEST(SafeStateTest, ContradictingPostForgetResponseViolates) {
  // The U2PC failure shape: decided abort, forgot, answered commit.
  EventLog history;
  history.Record(Decide(1, Outcome::kAbort));
  history.Record(Forget(1));
  history.Record(Respond(1, Outcome::kCommit, 2, /*presumed=*/true));
  SafeStateReport report = SafeStateChecker::Check(history);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].txn, 1u);
  EXPECT_NE(report.violations[0].description.find("after DeletePT"),
            std::string::npos);
}

TEST(SafeStateTest, PreForgetResponsesMustMatchToo) {
  // Responses from the live protocol table must match by construction; a
  // mismatch is a protocol bug and is flagged (stricter-but-sound
  // reading, documented in the header).
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Respond(1, Outcome::kAbort, 2, /*presumed=*/false));
  EXPECT_FALSE(SafeStateChecker::Check(history).ok());
}

TEST(SafeStateTest, UndecidedTxnMustBeAnsweredAbort) {
  // No decision in H at all (coordinator lost it pre-decision): only the
  // abort presumption is sound.
  EventLog history;
  history.Record(Respond(1, Outcome::kAbort, 2, /*presumed=*/true));
  EXPECT_TRUE(SafeStateChecker::Check(history).ok());
  history.Record(Respond(1, Outcome::kCommit, 3, /*presumed=*/true));
  EXPECT_FALSE(SafeStateChecker::Check(history).ok());
}

TEST(SafeStateTest, TransactionsAreIndependent) {
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Forget(1));
  history.Record(Respond(1, Outcome::kAbort, 2, true));  // violation
  history.Record(Decide(2, Outcome::kAbort));
  history.Record(Forget(2));
  history.Record(Respond(2, Outcome::kAbort, 2, true));  // fine
  SafeStateReport report = SafeStateChecker::Check(history);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].txn, 1u);
  EXPECT_EQ(report.txns_checked, 2u);
}

TEST(SafeStateTest, HoldsForExplainsTheFailure) {
  EventLog history;
  history.Record(Decide(7, Outcome::kAbort));
  history.Record(Forget(7));
  history.Record(Respond(7, Outcome::kCommit, 4, true));
  std::string why;
  EXPECT_FALSE(SafeStateChecker::HoldsFor(history, 7, &why));
  EXPECT_NE(why.find("responded commit"), std::string::npos);
  EXPECT_NE(why.find("abort"), std::string::npos);
  EXPECT_TRUE(SafeStateChecker::HoldsFor(history, 8));  // absent txn
}

TEST(SafeStateTest, MultipleForgetsUseTheFirst) {
  // Forget, recovery re-insertion, forget again: responses after the
  // FIRST forget are already constrained.
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Forget(1));
  history.Record(Decide(1, Outcome::kCommit));  // recovery re-initiation
  history.Record(Forget(1));
  history.Record(Respond(1, Outcome::kCommit, 2, true));
  EXPECT_TRUE(SafeStateChecker::Check(history).ok());
}

TEST(SafeStateTest, EndToEndPrAnyHistorySatisfiesDefinition2) {
  // A real recorded history from the adversarial schedule: PrAny's
  // responses must satisfy the criterion (Theorem 3's core argument).
  ScenarioResult r = RunIncompatiblePresumptionScenario(
      ProtocolKind::kPrAny, ProtocolKind::kPrN, Outcome::kCommit);
  EXPECT_TRUE(r.summary.safe_state.ok());
  EXPECT_GT(r.summary.safe_state.responses_checked, 0u);
}

TEST(SafeStateTest, EndToEndU2PCHistoryViolatesDefinition2) {
  ScenarioResult r = RunIncompatiblePresumptionScenario(
      ProtocolKind::kU2PC, ProtocolKind::kPrN, Outcome::kCommit);
  EXPECT_FALSE(r.summary.safe_state.ok());
}

}  // namespace
}  // namespace prany
