// Figure 1 of the paper as executable traces: PrAny's normal-processing
// message and logging pattern, plus the §4.1 dynamic protocol selection.

#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace prany {
namespace {

const std::vector<ProtocolKind> kPaperMix = {ProtocolKind::kPrA,
                                             ProtocolKind::kPrC};

FlowResult PrAnyFlow(const std::vector<ProtocolKind>& mix, Outcome outcome) {
  return RunFlow(ProtocolKind::kPrAny, ProtocolKind::kPrN, mix, outcome);
}

TEST(PrAnyFlowTest, Figure1aCommitCase) {
  FlowResult r = PrAnyFlow(kPaperMix, Outcome::kCommit);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.mode, ProtocolKind::kPrAny);
  // Coordinator: forced initiation, forced commit, non-forced end.
  EXPECT_EQ(r.coord_appends, 3u);
  EXPECT_EQ(r.coord_forced, 2u);
  // Messages: 2 PREPARE, 2 VOTE, 2 DECISION, and exactly ONE ack — the
  // PrA participant's; the PrC participant commits silently (Figure 1a).
  EXPECT_EQ(r.messages["PREPARE"], 2);
  EXPECT_EQ(r.messages["VOTE"], 2);
  EXPECT_EQ(r.messages["DECISION"], 2);
  EXPECT_EQ(r.messages["ACK"], 1);
  // Participants: PrA forces prepared+commit; PrC forces prepared, lazy
  // commit record.
  EXPECT_EQ(r.part_appends, 4u);
  EXPECT_EQ(r.part_forced, 3u);
}

TEST(PrAnyFlowTest, Figure1bAbortCase) {
  FlowResult r = PrAnyFlow(kPaperMix, Outcome::kAbort);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.mode, ProtocolKind::kPrAny);
  // Coordinator: forced initiation, NO abort record, non-forced end.
  EXPECT_EQ(r.coord_appends, 2u);
  EXPECT_EQ(r.coord_forced, 1u);
  // Exactly one ack — the PrC participant's (Figure 1b); the PrA
  // participant aborts silently with a non-forced abort record.
  EXPECT_EQ(r.messages["ACK"], 1);
  EXPECT_EQ(r.part_appends, 4u);
  EXPECT_EQ(r.part_forced, 3u);
}

TEST(PrAnyFlowTest, ThreeWayMixAckSetsAreOutcomeDependent) {
  std::vector<ProtocolKind> mix = {ProtocolKind::kPrN, ProtocolKind::kPrA,
                                   ProtocolKind::kPrC};
  FlowResult commit = PrAnyFlow(mix, Outcome::kCommit);
  EXPECT_TRUE(commit.correct);
  EXPECT_EQ(commit.messages["ACK"], 2);  // PrN + PrA acknowledge commits
  FlowResult abort = PrAnyFlow(mix, Outcome::kAbort);
  EXPECT_TRUE(abort.correct);
  EXPECT_EQ(abort.messages["ACK"], 2);  // PrN + PrC acknowledge aborts
}

TEST(PrAnyFlowTest, SelectorRunsNativeProtocolForHomogeneousSets) {
  // §4.1: no initiation record for pure-PrN / pure-PrA transactions.
  FlowResult prn = PrAnyFlow({ProtocolKind::kPrN, ProtocolKind::kPrN},
                             Outcome::kCommit);
  EXPECT_EQ(prn.mode, ProtocolKind::kPrN);
  EXPECT_EQ(prn.coord_appends, 2u);  // decision + end, no initiation
  EXPECT_EQ(prn.messages["ACK"], 2);

  FlowResult pra = PrAnyFlow({ProtocolKind::kPrA, ProtocolKind::kPrA},
                             Outcome::kAbort);
  EXPECT_EQ(pra.mode, ProtocolKind::kPrA);
  EXPECT_EQ(pra.coord_appends, 0u);  // pure-PrA abort logs nothing
  EXPECT_EQ(pra.messages["ACK"], 0);

  FlowResult prc = PrAnyFlow({ProtocolKind::kPrC, ProtocolKind::kPrC},
                             Outcome::kCommit);
  EXPECT_EQ(prc.mode, ProtocolKind::kPrC);
  EXPECT_EQ(prc.coord_appends, 2u);  // initiation + commit
  EXPECT_EQ(prc.coord_forced, 2u);
  EXPECT_EQ(prc.messages["ACK"], 0);
}

TEST(PrAnyFlowTest, PrAnyModeCostSitsBetweenTheNativeExtremes) {
  // The integration price: PrAny-mode commits cost one ack less than PrN
  // (the PrC member is silent) but one forced initiation record more than
  // PrA.
  FlowResult mixed = PrAnyFlow(kPaperMix, Outcome::kCommit);
  FlowResult pure_prn = PrAnyFlow({ProtocolKind::kPrN, ProtocolKind::kPrN},
                                  Outcome::kCommit);
  FlowResult pure_pra = PrAnyFlow({ProtocolKind::kPrA, ProtocolKind::kPrA},
                                  Outcome::kCommit);
  EXPECT_LT(mixed.total_messages, pure_prn.total_messages);
  EXPECT_EQ(mixed.coord_forced, pure_pra.coord_forced + 1);
}

TEST(PrAnyFlowTest, EndRecordWrittenInBothOutcomes) {
  // Figure 1 shows "Write End Log Record" on both sides; verify via the
  // coordinator's append counts (commit: init+commit+end; abort:
  // init+end).
  FlowResult commit = PrAnyFlow(kPaperMix, Outcome::kCommit);
  FlowResult abort = PrAnyFlow(kPaperMix, Outcome::kAbort);
  EXPECT_EQ(commit.coord_appends - commit.coord_forced, 1u);
  EXPECT_EQ(abort.coord_appends - abort.coord_forced, 1u);
}

TEST(PrAnyFlowTest, NoVoteParticipantTriggersAbortFlow) {
  // A genuine no-vote (not ForceAbort): the no-voter aborts unilaterally
  // and receives no decision message.
  SystemConfig cfg;
  auto system = std::make_unique<System>(cfg);
  system->AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system->AddSite(ProtocolKind::kPrA);
  system->AddSite(ProtocolKind::kPrC);
  TxnId txn = system->Submit(0, {1, 2}, {{1, Vote::kNo}});
  system->Run();
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
  // Only the yes-voter (site 2) gets the abort decision.
  EXPECT_EQ(system->metrics().Get("net.msg.DECISION"), 1);
  EXPECT_EQ(system->metrics().Get("coord.decide_abort"), 1);
  int aborts_enforced = 0;
  for (const SigEvent& e : system->history().events()) {
    if (e.txn == txn && e.type == SigEventType::kPartEnforce) {
      EXPECT_EQ(*e.outcome, Outcome::kAbort);
      ++aborts_enforced;
    }
  }
  EXPECT_EQ(aborts_enforced, 2);
}

TEST(PrAnyFlowTest, WideMixedTransaction) {
  std::vector<ProtocolKind> mix;
  for (int i = 0; i < 12; ++i) {
    mix.push_back(static_cast<ProtocolKind>(i % 3));
  }
  FlowResult r = PrAnyFlow(mix, Outcome::kCommit);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.messages["PREPARE"], 12);
  EXPECT_EQ(r.messages["ACK"], 8);  // 4 PrN + 4 PrA
}

}  // namespace
}  // namespace prany
