#include "core/protocol_selector.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

std::vector<ParticipantInfo> Mix(std::vector<ProtocolKind> kinds) {
  std::vector<ParticipantInfo> out;
  SiteId id = 1;
  for (ProtocolKind k : kinds) out.push_back({id++, k});
  return out;
}

TEST(SelectorTest, HomogeneousDetection) {
  EXPECT_TRUE(IsHomogeneous(Mix({ProtocolKind::kPrA})));
  EXPECT_TRUE(IsHomogeneous(Mix({ProtocolKind::kPrA, ProtocolKind::kPrA})));
  EXPECT_FALSE(
      IsHomogeneous(Mix({ProtocolKind::kPrA, ProtocolKind::kPrC})));
}

TEST(SelectorTest, HomogeneousSetsUseTheirNativeProtocol) {
  // §4.1: "The coordinator selects PrN if all the participants use PrN..."
  for (ProtocolKind k :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    EXPECT_EQ(SelectCommitProtocol(Mix({k, k, k})), k);
    EXPECT_EQ(SelectCommitProtocol(Mix({k})), k);
  }
}

TEST(SelectorTest, PrAMixedWithOthersSelectsPrAny) {
  // §4.1: "In the event that some of the participants employ PrA while
  // the others employ PrN or PrC, the coordinator selects PrAny."
  EXPECT_EQ(SelectCommitProtocol(Mix({ProtocolKind::kPrA,
                                      ProtocolKind::kPrC})),
            ProtocolKind::kPrAny);
  EXPECT_EQ(SelectCommitProtocol(Mix({ProtocolKind::kPrA,
                                      ProtocolKind::kPrN})),
            ProtocolKind::kPrAny);
  EXPECT_EQ(SelectCommitProtocol(Mix({ProtocolKind::kPrN,
                                      ProtocolKind::kPrA,
                                      ProtocolKind::kPrC})),
            ProtocolKind::kPrAny);
}

TEST(SelectorTest, PrNPrCMixAlsoSelectsPrAny) {
  // Documented deviation: the paper leaves this mix unspecified; we run
  // PrAny (sound) rather than adding a special case.
  EXPECT_EQ(SelectCommitProtocol(Mix({ProtocolKind::kPrN,
                                      ProtocolKind::kPrC})),
            ProtocolKind::kPrAny);
}

TEST(SelectorTest, OrderInsensitive) {
  EXPECT_EQ(SelectCommitProtocol(Mix({ProtocolKind::kPrC,
                                      ProtocolKind::kPrA})),
            ProtocolKind::kPrAny);
  EXPECT_EQ(SelectCommitProtocol(Mix({ProtocolKind::kPrC,
                                      ProtocolKind::kPrC,
                                      ProtocolKind::kPrC})),
            ProtocolKind::kPrC);
}

TEST(SelectorDeathTest, EmptySetAborts) {
  EXPECT_DEATH({ SelectCommitProtocol({}); }, "PRANY_CHECK");
  EXPECT_DEATH({ IsHomogeneous({}); }, "PRANY_CHECK");
}

}  // namespace
}  // namespace prany
