#include "core/presumption.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(PresumptionTest, PrAPresumesAbort) {
  EXPECT_EQ(PresumptionOf(ProtocolKind::kPrA), Outcome::kAbort);
}

TEST(PresumptionTest, PrCPresumesCommit) {
  EXPECT_EQ(PresumptionOf(ProtocolKind::kPrC), Outcome::kCommit);
}

TEST(PresumptionTest, PrNHasHiddenAbortPresumption) {
  // The appendix: "there is a hidden presumption in PrN by which the
  // coordinator considers all active transactions at the time of the
  // failure as aborted ones."
  EXPECT_EQ(PresumptionOf(ProtocolKind::kPrN), Outcome::kAbort);
  EXPECT_FALSE(HasExplicitPresumption(ProtocolKind::kPrN));
}

TEST(PresumptionTest, ExplicitPresumptions) {
  EXPECT_TRUE(HasExplicitPresumption(ProtocolKind::kPrA));
  EXPECT_TRUE(HasExplicitPresumption(ProtocolKind::kPrC));
}

TEST(PresumptionTest, CompatibilityMatrix) {
  // PrN and PrA agree (both abort); PrC conflicts with both — the
  // incompatibility the whole paper is about.
  EXPECT_TRUE(
      PresumptionsCompatible(ProtocolKind::kPrN, ProtocolKind::kPrA));
  EXPECT_FALSE(
      PresumptionsCompatible(ProtocolKind::kPrA, ProtocolKind::kPrC));
  EXPECT_FALSE(
      PresumptionsCompatible(ProtocolKind::kPrN, ProtocolKind::kPrC));
  for (ProtocolKind k :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    EXPECT_TRUE(PresumptionsCompatible(k, k));
  }
}

TEST(PresumptionDeathTest, IntegrationProtocolsHaveNoStaticPresumption) {
  EXPECT_DEATH({ PresumptionOf(ProtocolKind::kPrAny); },
               "no static presumption");
  EXPECT_DEATH({ PresumptionOf(ProtocolKind::kU2PC); },
               "no static presumption");
  EXPECT_DEATH({ PresumptionOf(ProtocolKind::kC2PC); },
               "no static presumption");
}

}  // namespace
}  // namespace prany
