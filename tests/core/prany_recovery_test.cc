// PrAny crash recovery (§4.2): log analysis, mode determination,
// re-initiation rules (footnote 4), and dynamic presumption adoption.

#include <gtest/gtest.h>

#include "core/prany_coordinator.h"
#include "harness/scenario.h"

namespace prany {
namespace {

struct PrAnyRun {
  std::unique_ptr<System> system;
  TxnId txn;
};

PrAnyRun RunPrAnyWithCrash(const std::vector<ProtocolKind>& participants,
                           CrashPoint point, SiteId target,
                           SimDuration downtime, bool force_abort) {
  SystemConfig cfg;
  cfg.seed = 3;
  auto system = std::make_unique<System>(cfg);
  system->AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  std::vector<SiteId> sites;
  for (ProtocolKind p : participants) {
    system->AddSite(p);
    sites.push_back(static_cast<SiteId>(sites.size() + 1));
  }
  TxnId txn = system->Submit(0, sites);
  if (force_abort) {
    system->sim().ScheduleAt(800, [sys = system.get(), txn]() {
      sys->site(0)->coordinator()->ForceAbort(txn);
    });
  }
  system->injector().CrashAtPoint(target, point, txn, downtime);
  system->Run();
  return PrAnyRun{std::move(system), txn};
}

std::map<SiteId, Outcome> Enforcements(const System& system, TxnId txn) {
  std::map<SiteId, Outcome> out;
  for (const SigEvent& e : system.history().events()) {
    if (e.txn == txn && e.type == SigEventType::kPartEnforce) {
      out[e.site] = *e.outcome;
    }
  }
  return out;
}

const std::vector<ProtocolKind> kPaperMix = {ProtocolKind::kPrA,
                                             ProtocolKind::kPrC};

TEST(PrAnyRecoveryTest, InitiationOnlyMeansAbortToNonPrAOnly) {
  // §4.2: "the coordinator submits an abort decision to the PrN and PrC
  // participants. It does not include the PrA participants" (footnote 4).
  PrAnyRun r = RunPrAnyWithCrash(
      {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC},
      CrashPoint::kCoordAfterInitiationLogged, /*target=*/0,
      /*downtime=*/5'000, /*force_abort=*/false);
  // PREPAREs never left; recovery sends the abort to exactly the PrN and
  // PrC participants (2 decision messages), never to the PrA one.
  EXPECT_EQ(r.system->metrics().Get("net.msg.DECISION"), 2);
  EXPECT_TRUE(r.system->CheckOperational().ok())
      << r.system->CheckOperational().ToString();
}

TEST(PrAnyRecoveryTest, InitiationPlusCommitResendsToNonPrCOnly) {
  // Crash after the commit record was forced but before any decision
  // message left: recovery re-submits commit to PrN+PrA but not PrC.
  PrAnyRun r = RunPrAnyWithCrash(
      {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC},
      CrashPoint::kCoordAfterDecisionMade, /*target=*/0,
      /*downtime=*/5'000, /*force_abort=*/false);
  auto enforced = Enforcements(*r.system, r.txn);
  ASSERT_EQ(enforced.size(), 3u);
  for (const auto& [site, outcome] : enforced) {
    EXPECT_EQ(outcome, Outcome::kCommit) << "site " << site;
  }
  EXPECT_TRUE(r.system->CheckOperational().ok());
  // The PrC participant was not a decision recipient; it learned the
  // outcome by inquiring and being answered with PrC's presumption, OR
  // from the rebuilt protocol table if it asked before completion.
  const SigEvent* respond =
      r.system->history().FirstWhere([&](const SigEvent& e) {
        return e.txn == r.txn && e.type == SigEventType::kCoordRespond &&
               e.peer == 3;
      });
  ASSERT_NE(respond, nullptr);
  EXPECT_EQ(*respond->outcome, Outcome::kCommit);
}

TEST(PrAnyRecoveryTest, AbortAfterDecisionSentIsStableAcrossCrash) {
  PrAnyRun r = RunPrAnyWithCrash(kPaperMix,
                                 CrashPoint::kCoordAfterDecisionSent,
                                 /*target=*/0, /*downtime=*/5'000,
                                 /*force_abort=*/true);
  auto enforced = Enforcements(*r.system, r.txn);
  for (const auto& [site, outcome] : enforced) {
    EXPECT_EQ(outcome, Outcome::kAbort) << "site " << site;
  }
  EXPECT_TRUE(r.system->CheckOperational().ok())
      << r.system->CheckOperational().ToString();
}

TEST(PrAnyRecoveryTest, PureModeDecisionWithoutInitiationIsReinitiated) {
  // Homogeneous PrA set -> pure PrA mode: the commit record (with the
  // participant list, no initiation record) drives recovery.
  PrAnyRun r = RunPrAnyWithCrash({ProtocolKind::kPrA, ProtocolKind::kPrA},
                                 CrashPoint::kCoordAfterDecisionMade,
                                 /*target=*/0, /*downtime=*/5'000,
                                 /*force_abort=*/false);
  auto enforced = Enforcements(*r.system, r.txn);
  ASSERT_EQ(enforced.size(), 2u);
  for (const auto& [site, outcome] : enforced) {
    EXPECT_EQ(outcome, Outcome::kCommit) << "site " << site;
  }
  EXPECT_TRUE(r.system->CheckOperational().ok());
}

TEST(PrAnyRecoveryTest, DynamicPresumptionAnswersPrCInquirerCommit) {
  // The §4.2 signature move: after forgetting a committed transaction,
  // the coordinator answers a late PrC inquirer "commit" *because the
  // inquirer speaks PrC* — with no log lookup.
  PrAnyRun r = RunPrAnyWithCrash(kPaperMix,
                                 CrashPoint::kPartOnDecisionReceived,
                                 /*target=*/2,  // the PrC participant
                                 /*downtime=*/500'000,
                                 /*force_abort=*/false);
  auto enforced = Enforcements(*r.system, r.txn);
  EXPECT_EQ(enforced.at(1), Outcome::kCommit);
  EXPECT_EQ(enforced.at(2), Outcome::kCommit);
  EXPECT_GT(r.system->metrics().Get("coord.answered_by_presumption"), 0);
  EXPECT_TRUE(r.system->CheckOperational().ok());
}

TEST(PrAnyRecoveryTest, DynamicPresumptionAnswersPrAInquirerAbort) {
  PrAnyRun r = RunPrAnyWithCrash(kPaperMix,
                                 CrashPoint::kPartOnDecisionReceived,
                                 /*target=*/1,  // the PrA participant
                                 /*downtime=*/500'000,
                                 /*force_abort=*/true);
  auto enforced = Enforcements(*r.system, r.txn);
  EXPECT_EQ(enforced.at(1), Outcome::kAbort);
  EXPECT_EQ(enforced.at(2), Outcome::kAbort);
  EXPECT_TRUE(r.system->CheckOperational().ok());
}

TEST(PrAnyRecoveryTest, DoubleCrashCoordinatorThenSameParticipant) {
  // Coordinator crashes after the commit record; later the PrC
  // participant crashes on the re-sent... (it is not a recipient) — on the
  // inquiry reply. Both recover; outcome must stay commit everywhere.
  SystemConfig cfg;
  cfg.seed = 11;
  auto system = std::make_unique<System>(cfg);
  system->AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system->AddSite(ProtocolKind::kPrA);
  system->AddSite(ProtocolKind::kPrC);
  TxnId txn = system->Submit(0, {1, 2});
  system->injector().CrashAtPoint(0, CrashPoint::kCoordAfterDecisionMade,
                                  txn, /*downtime=*/30'000);
  system->injector().CrashAtPoint(2, CrashPoint::kPartOnDecisionReceived,
                                  txn, /*downtime=*/200'000);
  system->Run();
  auto enforced = Enforcements(*system, txn);
  ASSERT_EQ(enforced.size(), 2u);
  EXPECT_EQ(enforced.at(1), Outcome::kCommit);
  EXPECT_EQ(enforced.at(2), Outcome::kCommit);
  EXPECT_TRUE(system->CheckOperational().ok())
      << system->CheckOperational().ToString();
  EXPECT_GE(system->site(0)->crash_count() + system->site(2)->crash_count(),
            2u);
}

TEST(PrAnyRecoveryTest, AppViewIsRebuiltConsistently) {
  // After a crash wipes the APP, recovery re-activates exactly the
  // participants of re-initiated transactions, and completion drains it.
  PrAnyRun r = RunPrAnyWithCrash(kPaperMix,
                                 CrashPoint::kCoordAfterDecisionMade,
                                 /*target=*/0, /*downtime=*/5'000,
                                 /*force_abort=*/false);
  const auto* coordinator = static_cast<const PrAnyCoordinator*>(
      r.system->site(0)->coordinator());
  EXPECT_EQ(coordinator->app().ActiveSites(), 0u);
  EXPECT_TRUE(r.system->CheckOperational().ok());
}

}  // namespace
}  // namespace prany
