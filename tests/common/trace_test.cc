#include "common/trace.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(TraceTest, DisabledByDefault) {
  TraceLog trace;
  EXPECT_FALSE(trace.enabled());
  trace.Emit(10, "dropped");
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceTest, EnabledRetainsEventsInOrder) {
  TraceLog trace;
  trace.Enable();
  trace.Emit(10, "first");
  trace.Emit(20, "second");
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].time, 10u);
  EXPECT_EQ(trace.events()[0].text, "first");
  EXPECT_EQ(trace.events()[1].text, "second");
}

TEST(TraceTest, DisableStopsRecording) {
  TraceLog trace;
  trace.Enable();
  trace.Emit(1, "kept");
  trace.Disable();
  trace.Emit(2, "dropped");
  EXPECT_EQ(trace.events().size(), 1u);
}

TEST(TraceTest, ClearEmpties) {
  TraceLog trace;
  trace.Enable();
  trace.Emit(1, "a");
  trace.Clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceTest, ToStringFormatsLines) {
  TraceLog trace;
  trace.Enable();
  trace.Emit(1500, "site 2 PREPARE");
  EXPECT_EQ(trace.ToString(), "t=1500us site 2 PREPARE\n");
}

}  // namespace
}  // namespace prany
