#include "common/trace.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TraceEvent MakeSend(SimTime time, TxnId txn) {
  TraceEvent e;
  e.time = time;
  e.kind = TraceEventKind::kMsgSend;
  e.site = 0;
  e.peer = 1;
  e.txn = txn;
  e.label = "PREPARE";
  return e;
}

TEST(TraceTest, DisabledByDefault) {
  TraceLog trace;
  EXPECT_FALSE(trace.enabled());
  trace.Emit(10, "dropped");
  trace.Emit(MakeSend(20, 7));
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceTest, EnabledRetainsEventsInOrder) {
  TraceLog trace;
  trace.Enable();
  trace.Emit(10, "first");
  trace.Emit(20, "second");
  ASSERT_EQ(trace.events().size(), 2u);
  EXPECT_EQ(trace.events()[0].time, 10u);
  EXPECT_EQ(trace.events()[0].detail, "first");
  EXPECT_EQ(trace.events()[1].detail, "second");
}

TEST(TraceTest, LegacyNotesAreKindNote) {
  TraceLog trace;
  trace.Enable();
  trace.Emit(5, "a note");
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.events()[0].kind, TraceEventKind::kNote);
  EXPECT_EQ(trace.events()[0].site, kInvalidSite);
  EXPECT_EQ(trace.events()[0].txn, kInvalidTxn);
}

TEST(TraceTest, StructuredEventRoundTrips) {
  TraceLog trace;
  trace.Enable();
  trace.Emit(MakeSend(42, 9));
  ASSERT_EQ(trace.events().size(), 1u);
  const TraceEvent& e = trace.events()[0];
  EXPECT_EQ(e.kind, TraceEventKind::kMsgSend);
  EXPECT_EQ(e.time, 42u);
  EXPECT_EQ(e.site, 0u);
  EXPECT_EQ(e.peer, 1u);
  EXPECT_EQ(e.txn, 9u);
  EXPECT_EQ(e.label, "PREPARE");
}

TEST(TraceTest, DisableStopsRecording) {
  TraceLog trace;
  trace.Enable();
  trace.Emit(1, "kept");
  trace.Disable();
  trace.Emit(2, "dropped");
  EXPECT_EQ(trace.events().size(), 1u);
}

TEST(TraceTest, ClearEmpties) {
  TraceLog trace;
  trace.Enable();
  trace.Emit(1, "a");
  trace.Clear();
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceTest, ToStringFormatsLines) {
  TraceLog trace;
  trace.Enable();
  trace.Emit(1500, "site 2 PREPARE");
  EXPECT_EQ(trace.ToString(), "t=1500us site 2 PREPARE\n");
}

TEST(TraceTest, EventKindNamesAndCategories) {
  EXPECT_EQ(ToString(TraceEventKind::kMsgSend), "MSG_SEND");
  EXPECT_EQ(ToString(TraceEventKind::kWalAppend), "WAL_APPEND");
  EXPECT_EQ(ToString(TraceEventKind::kCoordDecide), "COORD_DECIDE");
  EXPECT_STREQ(TraceCategory(TraceEventKind::kMsgDrop), "net");
  EXPECT_STREQ(TraceCategory(TraceEventKind::kWalForce), "wal");
  EXPECT_STREQ(TraceCategory(TraceEventKind::kPartVote), "part");
  EXPECT_STREQ(TraceCategory(TraceEventKind::kSiteCrash), "site");
  EXPECT_STREQ(TraceCategory(TraceEventKind::kNote), "note");
}

// Regression test: Enable(/*echo_to_stderr=*/false) must not echo, and
// Enable(true) must echo each event as it is emitted.
TEST(TraceTest, EchoFlagControlsStderrOutput) {
  {
    TraceLog trace;
    trace.Enable(/*echo_to_stderr=*/false);
    testing::internal::CaptureStderr();
    trace.Emit(10, "silent");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  }
  {
    TraceLog trace;
    trace.Enable(/*echo_to_stderr=*/true);
    testing::internal::CaptureStderr();
    trace.Emit(10, "loud");
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("loud"), std::string::npos);
    EXPECT_NE(err.find("t=10us"), std::string::npos);
  }
  {
    // Re-enabling without echo after an echoing phase must stop the echo.
    TraceLog trace;
    trace.Enable(/*echo_to_stderr=*/true);
    trace.Enable(/*echo_to_stderr=*/false);
    testing::internal::CaptureStderr();
    trace.Emit(10, "silent again");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
  }
}

}  // namespace
}  // namespace prany
