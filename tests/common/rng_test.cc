#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace prany {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1'000'000), b.Uniform(0, 1'000'000));
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (a.Uniform(0, 1'000'000) != b.Uniform(0, 1'000'000)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, UniformDegenerateRange) {
  Rng rng(7);
  EXPECT_EQ(rng.Uniform(5, 5), 5u);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(5);
  int hits = 0;
  constexpr int kTrials = 10'000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.03);
}

TEST(RngTest, ExponentialMeanRoughlyCalibrated) {
  Rng rng(13);
  double sum = 0;
  constexpr int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) sum += rng.Exponential(500.0);
  EXPECT_NEAR(sum / kTrials, 500.0, 25.0);
}

TEST(RngTest, IndexCoversAllSlots) {
  Rng rng(17);
  std::set<size_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Index(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(19);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<size_t> s = rng.SampleWithoutReplacement(10, 6);
    ASSERT_EQ(s.size(), 6u);
    std::set<size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 6u);
    EXPECT_LT(*std::max_element(s.begin(), s.end()), 10u);
  }
}

TEST(RngTest, SampleFullPopulationIsPermutation) {
  Rng rng(23);
  std::vector<size_t> s = rng.SampleWithoutReplacement(8, 8);
  std::set<size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 8u);
}

TEST(RngTest, ForkIsDeterministicButIndependent) {
  Rng a(99), b(99);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  // Forks of identical parents agree with each other...
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fa.Uniform(0, 1 << 30), fb.Uniform(0, 1 << 30));
  }
  // ...and do not replay the parent's stream.
  Rng c(99);
  Rng fc = c.Fork();
  EXPECT_NE(fc.Uniform(0, 1 << 30), c.Uniform(0, 1 << 30));
}

TEST(RngDeathTest, InvalidArgumentsAbort) {
  Rng rng(1);
  EXPECT_DEATH({ rng.Uniform(5, 4); }, "PRANY_CHECK");
  EXPECT_DEATH({ rng.Index(0); }, "PRANY_CHECK");
  EXPECT_DEATH({ rng.Exponential(0.0); }, "PRANY_CHECK");
  EXPECT_DEATH({ rng.SampleWithoutReplacement(3, 4); }, "PRANY_CHECK");
}

}  // namespace
}  // namespace prany
