#include "common/string_util.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("x=%d", 7), "x=7");
  EXPECT_EQ(StrFormat("%s-%s", "a", "b"), "a-b");
  EXPECT_EQ(StrFormat("%.2f", 1.5), "1.50");
}

TEST(StringUtilTest, StrFormatEmpty) {
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StringUtilTest, StrFormatLongOutput) {
  std::string big(500, 'x');
  EXPECT_EQ(StrFormat("%s", big.c_str()).size(), 500u);
}

TEST(StringUtilTest, JoinNumbers) {
  std::vector<int> v = {1, 2, 3};
  EXPECT_EQ(JoinNumbers(v, ","), "1,2,3");
  EXPECT_EQ(JoinNumbers(std::vector<int>{}, ","), "");
  EXPECT_EQ(JoinNumbers(std::vector<int>{9}, ","), "9");
}

TEST(StringUtilTest, PadRight) {
  EXPECT_EQ(PadRight("ab", 5), "ab   ");
  EXPECT_EQ(PadRight("abcdef", 3), "abcdef");  // never truncates
}

TEST(StringUtilTest, PadLeft) {
  EXPECT_EQ(PadLeft("42", 5), "   42");
  EXPECT_EQ(PadLeft("abcdef", 3), "abcdef");
}

TEST(StringUtilTest, RenderTableAlignsColumns) {
  std::string t = RenderTable({{"name", "count"}, {"prepare", "2"},
                               {"ack", "10"}});
  // Header separator present, columns aligned on the widest cell.
  EXPECT_NE(t.find("name     count"), std::string::npos);
  EXPECT_NE(t.find("-------"), std::string::npos);
  EXPECT_NE(t.find("prepare  2"), std::string::npos);
  EXPECT_NE(t.find("ack      10"), std::string::npos);
}

TEST(StringUtilTest, RenderTableWithoutSeparator) {
  std::string t = RenderTable({{"a", "b"}, {"c", "d"}}, false);
  EXPECT_EQ(t.find("--"), std::string::npos);
}

TEST(StringUtilTest, RenderTableEmpty) {
  EXPECT_EQ(RenderTable({}), "");
}

TEST(StringUtilTest, RenderTableRaggedRows) {
  std::string t = RenderTable({{"a", "b", "c"}, {"x"}});
  EXPECT_NE(t.find("a  b  c"), std::string::npos);
  EXPECT_NE(t.find("x"), std::string::npos);
}

}  // namespace
}  // namespace prany
