#include "common/types.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(TypesTest, ProtocolNames) {
  EXPECT_EQ(ToString(ProtocolKind::kPrN), "PrN");
  EXPECT_EQ(ToString(ProtocolKind::kPrA), "PrA");
  EXPECT_EQ(ToString(ProtocolKind::kPrC), "PrC");
  EXPECT_EQ(ToString(ProtocolKind::kU2PC), "U2PC");
  EXPECT_EQ(ToString(ProtocolKind::kC2PC), "C2PC");
  EXPECT_EQ(ToString(ProtocolKind::kPrAny), "PrAny");
}

TEST(TypesTest, OutcomeAndVoteNames) {
  EXPECT_EQ(ToString(Outcome::kCommit), "commit");
  EXPECT_EQ(ToString(Outcome::kAbort), "abort");
  EXPECT_EQ(ToString(Vote::kYes), "yes");
  EXPECT_EQ(ToString(Vote::kNo), "no");
}

TEST(TypesTest, Opposite) {
  EXPECT_EQ(Opposite(Outcome::kCommit), Outcome::kAbort);
  EXPECT_EQ(Opposite(Outcome::kAbort), Outcome::kCommit);
}

TEST(TypesTest, IsBaseProtocol) {
  EXPECT_TRUE(IsBaseProtocol(ProtocolKind::kPrN));
  EXPECT_TRUE(IsBaseProtocol(ProtocolKind::kPrA));
  EXPECT_TRUE(IsBaseProtocol(ProtocolKind::kPrC));
  EXPECT_FALSE(IsBaseProtocol(ProtocolKind::kU2PC));
  EXPECT_FALSE(IsBaseProtocol(ProtocolKind::kC2PC));
  EXPECT_FALSE(IsBaseProtocol(ProtocolKind::kPrAny));
}

TEST(TypesTest, ParseProtocolKindRoundTripsAllKinds) {
  for (ProtocolKind k :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC,
        ProtocolKind::kU2PC, ProtocolKind::kC2PC, ProtocolKind::kPrAny}) {
    ProtocolKind parsed;
    ASSERT_TRUE(ParseProtocolKind(ToString(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
}

TEST(TypesTest, ParseIsCaseInsensitiveAndHasAliases) {
  ProtocolKind k;
  ASSERT_TRUE(ParseProtocolKind("prany", &k));
  EXPECT_EQ(k, ProtocolKind::kPrAny);
  ASSERT_TRUE(ParseProtocolKind("2PC", &k));
  EXPECT_EQ(k, ProtocolKind::kPrN);
}

TEST(TypesTest, ParseRejectsUnknown) {
  ProtocolKind k;
  EXPECT_FALSE(ParseProtocolKind("3pc", &k));
  EXPECT_FALSE(ParseProtocolKind("", &k));
}

TEST(TypesTest, ParticipantInfoEquality) {
  ParticipantInfo a{1, ProtocolKind::kPrA};
  ParticipantInfo b{1, ProtocolKind::kPrA};
  ParticipantInfo c{1, ProtocolKind::kPrC};
  ParticipantInfo d{2, ProtocolKind::kPrA};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

}  // namespace
}  // namespace prany
