#include "common/trace_export.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

std::vector<TraceEvent> SmallTrace() {
  std::vector<TraceEvent> events;
  TraceEvent send;
  send.time = 100;
  send.kind = TraceEventKind::kMsgSend;
  send.site = 0;
  send.peer = 1;
  send.txn = 7;
  send.label = "PREPARE";
  send.value = 21;
  events.push_back(send);
  TraceEvent note;
  note.time = 200;
  note.kind = TraceEventKind::kNote;
  note.detail = "say \"hi\"";
  events.push_back(note);
  return events;
}

TEST(ChromeTraceJsonTest, EmitsTraceEventsArray) {
  std::string json = ChromeTraceJson(SmallTrace());
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  // One thread_name metadata row per track: site 0 and the sim track
  // (kNote has no site).
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"site 0\""), std::string::npos);
  EXPECT_NE(json.find("\"sim\""), std::string::npos);
  // The instant event with its args.
  EXPECT_NE(json.find("\"name\":\"MSG_SEND PREPARE\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"net\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"txn\":7"), std::string::npos);
  EXPECT_NE(json.find("\"peer\":1"), std::string::npos);
  EXPECT_NE(json.find("\"value\":21"), std::string::npos);
  // The note's detail is escaped.
  EXPECT_NE(json.find("say \\\"hi\\\""), std::string::npos);
}

TEST(ChromeTraceJsonTest, EmitsPhaseSlicesFromTimelines) {
  std::map<TxnId, TxnTimeline> timelines;
  TxnTimeline t;
  t.txn = 7;
  t.coordinator = 0;
  t.mode = ProtocolKind::kPrC;
  t.begin = 0;
  t.decided = 1000;
  t.forgotten = 2500;
  timelines[7] = t;
  std::string json = ChromeTraceJson({}, timelines);
  EXPECT_NE(json.find("\"name\":\"txn 7 voting\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"txn 7 decision\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1500"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"PrC\""), std::string::npos);
}

TEST(ChromeTraceJsonTest, EmptyTraceIsStillValidShape) {
  std::string json = ChromeTraceJson({});
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("]"), std::string::npos);
}

TEST(MetricsJsonTest, DumpsCountersAndDistributions) {
  MetricsRegistry metrics;
  metrics.Add("net.msg.PREPARE", 2);
  metrics.Observe("txn.messages", 4.0);
  metrics.Observe("txn.messages", 8.0);
  std::string json = MetricsJson(metrics);
  EXPECT_NE(json.find("\"net.msg.PREPARE\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"txn.messages\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"min\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"max\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"mean\": 6"), std::string::npos);
}

TEST(WriteStringToFileTest, RoundTrips) {
  std::string path = testing::TempDir() + "/trace_export_test.json";
  ASSERT_TRUE(WriteStringToFile(path, "{\"ok\":true}"));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  EXPECT_EQ(std::string(buf, n), "{\"ok\":true}");
  EXPECT_FALSE(WriteStringToFile("/nonexistent-dir/x.json", "data"));
}

}  // namespace
}  // namespace prany
