#include "common/trace_query.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TraceEvent Event(SimTime time, TraceEventKind kind, SiteId site, TxnId txn,
                 std::string label = "") {
  TraceEvent e;
  e.time = time;
  e.kind = kind;
  e.site = site;
  e.txn = txn;
  e.label = std::move(label);
  return e;
}

std::vector<TraceEvent> SampleTrace() {
  std::vector<TraceEvent> events;
  events.push_back(Event(0, TraceEventKind::kCoordBegin, 0, 1));
  events.push_back(Event(0, TraceEventKind::kMsgSend, 0, 1, "PREPARE"));
  events.push_back(Event(500, TraceEventKind::kMsgDeliver, 1, 1, "PREPARE"));
  TraceEvent prepared = Event(500, TraceEventKind::kWalAppend, 1, 1, "PREPARED");
  prepared.forced = true;
  events.push_back(prepared);
  events.push_back(Event(500, TraceEventKind::kMsgSend, 1, 1, "VOTE"));
  events.push_back(Event(1000, TraceEventKind::kMsgDeliver, 0, 1, "VOTE"));
  TraceEvent decide = Event(1000, TraceEventKind::kCoordDecide, 0, 1);
  decide.outcome = Outcome::kCommit;
  events.push_back(decide);
  events.push_back(Event(1000, TraceEventKind::kMsgSend, 0, 1, "DECISION"));
  events.push_back(Event(2000, TraceEventKind::kCoordForget, 0, 1));
  // A second transaction interleaved at the end.
  events.push_back(Event(3000, TraceEventKind::kCoordBegin, 0, 2));
  return events;
}

TEST(TraceMatcherTest, UnsetFieldsAreWildcards) {
  TraceMatcher any;
  EXPECT_TRUE(any.Matches(Event(7, TraceEventKind::kMsgDrop, 3, 9)));

  TraceMatcher send = TraceMatcher::Of(TraceEventKind::kMsgSend);
  EXPECT_TRUE(send.Matches(Event(0, TraceEventKind::kMsgSend, 0, 1)));
  EXPECT_FALSE(send.Matches(Event(0, TraceEventKind::kMsgDeliver, 0, 1)));
}

TEST(TraceMatcherTest, AllSetFieldsMustMatch) {
  TraceMatcher m = TraceMatcher::Of(TraceEventKind::kMsgSend)
                       .WithSite(1)
                       .WithTxn(1)
                       .WithLabel("VOTE");
  EXPECT_TRUE(m.Matches(Event(500, TraceEventKind::kMsgSend, 1, 1, "VOTE")));
  EXPECT_FALSE(m.Matches(Event(500, TraceEventKind::kMsgSend, 2, 1, "VOTE")));
  EXPECT_FALSE(
      m.Matches(Event(500, TraceEventKind::kMsgSend, 1, 1, "PREPARE")));
}

TEST(TraceMatcherTest, MatchesOutcomeAndForcedFlags) {
  TraceEvent forced_append =
      Event(1, TraceEventKind::kWalAppend, 0, 1, "PREPARED");
  forced_append.forced = true;
  EXPECT_TRUE(TraceMatcher::Of(TraceEventKind::kWalAppend)
                  .WithForced(true)
                  .Matches(forced_append));
  EXPECT_FALSE(TraceMatcher::Of(TraceEventKind::kWalAppend)
                   .WithForced(false)
                   .Matches(forced_append));

  TraceEvent decide = Event(1, TraceEventKind::kCoordDecide, 0, 1);
  decide.outcome = Outcome::kAbort;
  EXPECT_TRUE(TraceMatcher::Of(TraceEventKind::kCoordDecide)
                  .WithOutcome(Outcome::kAbort)
                  .Matches(decide));
  EXPECT_FALSE(TraceMatcher::Of(TraceEventKind::kCoordDecide)
                   .WithOutcome(Outcome::kCommit)
                   .Matches(decide));
}

TEST(ExpectSequenceTest, AcceptsSubsequenceWithGaps) {
  SequenceCheck check = ExpectSequence(
      SampleTrace(), {
                         TraceMatcher::Of(TraceEventKind::kCoordBegin),
                         TraceMatcher::Of(TraceEventKind::kMsgSend)
                             .WithLabel("VOTE"),
                         TraceMatcher::Of(TraceEventKind::kCoordDecide)
                             .WithOutcome(Outcome::kCommit),
                         TraceMatcher::Of(TraceEventKind::kCoordForget),
                     });
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.matched, 4u);
}

TEST(ExpectSequenceTest, RejectsOutOfOrderEvents) {
  SequenceCheck check = ExpectSequence(
      SampleTrace(),
      {
          TraceMatcher::Of(TraceEventKind::kCoordForget).WithTxn(1),
          TraceMatcher::Of(TraceEventKind::kCoordDecide).WithTxn(1),
      });
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.matched, 1u);
  EXPECT_NE(check.error.find("matcher #2"), std::string::npos) << check.error;
}

TEST(ExpectSequenceTest, ReportsFirstUnmatchedMatcher) {
  SequenceCheck check = ExpectSequence(
      SampleTrace(), {TraceMatcher::Of(TraceEventKind::kSiteCrash)});
  EXPECT_FALSE(check.ok);
  EXPECT_EQ(check.matched, 0u);
  EXPECT_NE(check.error.find("SITE_CRASH"), std::string::npos) << check.error;
}

TEST(ExpectSequenceTest, EmptySequenceIsOk) {
  SequenceCheck check = ExpectSequence(SampleTrace(), {});
  EXPECT_TRUE(check.ok);
}

TEST(TraceQueryTest, FiltersCompose) {
  TraceQuery q(SampleTrace());
  EXPECT_EQ(q.Count(), 10u);
  EXPECT_EQ(q.Txn(1).Count(), 9u);
  EXPECT_EQ(q.Txn(2).Count(), 1u);
  EXPECT_EQ(q.Kind(TraceEventKind::kMsgSend).Count(), 3u);
  EXPECT_EQ(q.Kind(TraceEventKind::kMsgSend).Label("PREPARE").Count(), 1u);
  EXPECT_EQ(q.Site(1).Kind(TraceEventKind::kWalAppend).ForcedOnly().Count(),
            1u);
  EXPECT_EQ(q.Between(500, 1000).Count(), 6u);  // Inclusive bounds.
  EXPECT_EQ(q.OutcomeIs(Outcome::kCommit).Count(), 1u);
  EXPECT_EQ(q.Where([](const TraceEvent& e) { return e.time >= 2000; })
                .Count(),
            2u);
}

TEST(TraceQueryTest, FirstAndLast) {
  TraceQuery q(SampleTrace());
  ASSERT_NE(q.First(), nullptr);
  EXPECT_EQ(q.First()->kind, TraceEventKind::kCoordBegin);
  ASSERT_NE(q.Last(), nullptr);
  EXPECT_EQ(q.Last()->txn, 2u);
  EXPECT_EQ(q.Kind(TraceEventKind::kSiteCrash).First(), nullptr);
  EXPECT_TRUE(q.Kind(TraceEventKind::kSiteCrash).Empty());
}

TEST(TraceQueryTest, ExpectRunsOverFilteredEvents) {
  TraceQuery q(SampleTrace());
  // Within txn 1 only, begin -> decide -> forget holds.
  SequenceCheck check =
      q.Txn(1).Expect({TraceMatcher::Of(TraceEventKind::kCoordBegin),
                       TraceMatcher::Of(TraceEventKind::kCoordDecide),
                       TraceMatcher::Of(TraceEventKind::kCoordForget)});
  EXPECT_TRUE(check.ok) << check.error;
  // Filtered down to txn 2, the decide matcher cannot be satisfied.
  EXPECT_FALSE(
      q.Txn(2).Expect({TraceMatcher::Of(TraceEventKind::kCoordDecide)}).ok);
}

}  // namespace
}  // namespace prany
