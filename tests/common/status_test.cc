#include "common/status.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such txn");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "no such txn");
  EXPECT_EQ(s.ToString(), "NotFound: no such txn");
}

TEST(StatusTest, EveryFactoryMapsToItsPredicate) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, PredicatesAreExclusive) {
  Status s = Status::Corruption("bad bytes");
  EXPECT_FALSE(s.IsNotFound());
  EXPECT_FALSE(s.IsInvalidArgument());
  EXPECT_TRUE(s.IsCorruption());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOrDie(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::Corruption("truncated"));
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(ResultTest, ValueOrFallsBack) {
  Result<int> err(Status::NotFound("x"));
  EXPECT_EQ(err.ValueOr(7), 7);
  Result<int> ok(3);
  EXPECT_EQ(ok.ValueOr(7), 3);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).ValueOrDie();
  EXPECT_EQ(v, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailsThrough() {
  PRANY_RETURN_NOT_OK(Status::Unavailable("down"));
  return Status::OK();
}

Status Succeeds() {
  PRANY_RETURN_NOT_OK(Status::OK());
  return Status::AlreadyExists("reached end");
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(FailsThrough().IsUnavailable());
  EXPECT_TRUE(Succeeds().IsAlreadyExists());
}

Result<int> Double(Result<int> in) {
  PRANY_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(StatusMacroTest, AssignOrReturn) {
  EXPECT_EQ(*Double(21), 42);
  EXPECT_TRUE(Double(Status::NotFound("x")).status().IsNotFound());
}

TEST(StatusDeathTest, ValueOrDieOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.ValueOrDie(); }, "ValueOrDie");
}

TEST(StatusDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ PRANY_CHECK_MSG(false, "nope"); }, "PRANY_CHECK failed");
}

}  // namespace
}  // namespace prany
