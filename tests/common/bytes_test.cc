#include "common/bytes.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(BytesTest, FixedWidthRoundTrip) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0102030405060708ull);
  ByteReader r(w.bytes());
  uint8_t a;
  uint16_t b;
  uint32_t c;
  uint64_t d;
  ASSERT_TRUE(r.GetU8(&a).ok());
  ASSERT_TRUE(r.GetU16(&b).ok());
  ASSERT_TRUE(r.GetU32(&c).ok());
  ASSERT_TRUE(r.GetU64(&d).ok());
  EXPECT_EQ(a, 0xab);
  EXPECT_EQ(b, 0x1234);
  EXPECT_EQ(c, 0xdeadbeefu);
  EXPECT_EQ(d, 0x0102030405060708ull);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, LittleEndianLayout) {
  ByteWriter w;
  w.PutU32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(BytesTest, VarintSmallValuesAreOneByte) {
  for (uint64_t v : {0ull, 1ull, 127ull}) {
    ByteWriter w;
    w.PutVarint(v);
    EXPECT_EQ(w.size(), 1u) << v;
  }
}

TEST(BytesTest, VarintRoundTripSweep) {
  // Property sweep over boundary values of each 7-bit group.
  std::vector<uint64_t> values = {0, 1, 127, 128, 16383, 16384, 1u << 20,
                                  (1ull << 32) - 1, 1ull << 32,
                                  ~0ull, ~0ull - 1};
  for (uint64_t v : values) {
    ByteWriter w;
    w.PutVarint(v);
    ByteReader r(w.bytes());
    uint64_t out = 0;
    ASSERT_TRUE(r.GetVarint(&out).ok()) << v;
    EXPECT_EQ(out, v);
    EXPECT_TRUE(r.AtEnd());
  }
}

TEST(BytesTest, StringRoundTrip) {
  ByteWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string("\x00\x01\x02", 3));
  ByteReader r(w.bytes());
  std::string a, b, c;
  ASSERT_TRUE(r.GetString(&a).ok());
  ASSERT_TRUE(r.GetString(&b).ok());
  ASSERT_TRUE(r.GetString(&c).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string("\x00\x01\x02", 3));
}

TEST(BytesTest, TruncatedFixedFieldIsCorruption) {
  ByteWriter w;
  w.PutU16(7);
  ByteReader r(w.bytes());
  uint32_t out;
  EXPECT_TRUE(r.GetU32(&out).IsCorruption());
}

TEST(BytesTest, TruncatedVarintIsCorruption) {
  std::vector<uint8_t> bytes = {0x80, 0x80};  // continuation never ends
  ByteReader r(bytes.data(), bytes.size());
  uint64_t out;
  EXPECT_TRUE(r.GetVarint(&out).IsCorruption());
}

TEST(BytesTest, OverlongVarintIsCorruption) {
  std::vector<uint8_t> bytes(11, 0x80);
  bytes.push_back(0x01);
  ByteReader r(bytes.data(), bytes.size());
  uint64_t out;
  EXPECT_TRUE(r.GetVarint(&out).IsCorruption());
}

TEST(BytesTest, StringLengthBeyondBufferIsCorruption) {
  ByteWriter w;
  w.PutVarint(100);  // claims 100 bytes
  w.PutRaw("abc", 3);
  ByteReader r(w.bytes());
  std::string out;
  EXPECT_TRUE(r.GetString(&out).IsCorruption());
}

TEST(BytesTest, ReaderTracksPositionAndRemaining) {
  ByteWriter w;
  w.PutU32(1);
  w.PutU32(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  uint32_t v;
  ASSERT_TRUE(r.GetU32(&v).ok());
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_FALSE(r.AtEnd());
}

TEST(BytesTest, TakeBytesMovesBuffer) {
  ByteWriter w;
  w.PutU8(5);
  std::vector<uint8_t> taken = w.TakeBytes();
  EXPECT_EQ(taken.size(), 1u);
}

}  // namespace
}  // namespace prany
