#include "common/metrics.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(MetricsTest, CountersStartAtZero) {
  MetricsRegistry m;
  EXPECT_EQ(m.Get("never.touched"), 0);
}

TEST(MetricsTest, AddAccumulates) {
  MetricsRegistry m;
  m.Add("a");
  m.Add("a", 4);
  m.Add("a", -2);
  EXPECT_EQ(m.Get("a"), 3);
}

TEST(MetricsTest, CountersAreIndependent) {
  MetricsRegistry m;
  m.Add("x", 5);
  m.Add("y", 7);
  EXPECT_EQ(m.Get("x"), 5);
  EXPECT_EQ(m.Get("y"), 7);
}

TEST(MetricsTest, SummarizeEmptyDistribution) {
  MetricsRegistry m;
  DistributionStats s = m.Summarize("nothing");
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(MetricsTest, SummarizeSingleSample) {
  MetricsRegistry m;
  m.Observe("lat", 42.0);
  DistributionStats s = m.Summarize("lat");
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 42.0);
  EXPECT_EQ(s.max, 42.0);
  EXPECT_EQ(s.mean, 42.0);
  EXPECT_EQ(s.p50, 42.0);
  EXPECT_EQ(s.p99, 42.0);
}

TEST(MetricsTest, SummarizeKnownDistribution) {
  MetricsRegistry m;
  for (int i = 1; i <= 100; ++i) m.Observe("d", static_cast<double>(i));
  DistributionStats s = m.Summarize("d");
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.mean, 50.5, 1e-9);
  EXPECT_NEAR(s.p50, 50.5, 1.0);
  EXPECT_NEAR(s.p95, 95.0, 1.5);
  EXPECT_NEAR(s.p99, 99.0, 1.5);
}

TEST(MetricsTest, PercentilesHandleUnsortedInput) {
  MetricsRegistry m;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) m.Observe("d", v);
  DistributionStats s = m.Summarize("d");
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_EQ(s.p50, 5.0);
}

// Pins the percentile definition: rank = q * (count - 1) with linear
// interpolation between the neighbouring sorted samples. Exporters and
// flow tests rely on these exact values.
TEST(MetricsTest, PercentileInterpolationIsExact) {
  MetricsRegistry m;
  for (double v : {10.0, 20.0, 30.0, 40.0, 50.0}) m.Observe("d", v);
  DistributionStats s = m.Summarize("d");
  EXPECT_DOUBLE_EQ(s.p50, 30.0);   // rank 2.0: exact sample.
  EXPECT_DOUBLE_EQ(s.p95, 48.0);   // rank 3.8: 40 + 0.8 * (50 - 40).
  EXPECT_DOUBLE_EQ(s.p99, 49.6);   // rank 3.96.
}

TEST(MetricsTest, PercentileInterpolatesBetweenTwoSamples) {
  MetricsRegistry m;
  m.Observe("d", 0.0);
  m.Observe("d", 100.0);
  DistributionStats s = m.Summarize("d");
  EXPECT_DOUBLE_EQ(s.p50, 50.0);
  EXPECT_DOUBLE_EQ(s.p95, 95.0);
  EXPECT_DOUBLE_EQ(s.p99, 99.0);
}

TEST(MetricsTest, SummarizeEmptyIsAllZero) {
  MetricsRegistry m;
  m.Observe("other", 1.0);  // A different distribution must not leak in.
  DistributionStats s = m.Summarize("nothing");
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(MetricsTest, DistributionNamesAreSorted) {
  MetricsRegistry m;
  EXPECT_TRUE(m.DistributionNames().empty());
  m.Observe("b", 1.0);
  m.Observe("a", 1.0);
  m.Observe("b", 2.0);
  EXPECT_EQ(m.DistributionNames(),
            (std::vector<std::string>{"a", "b"}));
}

TEST(MetricsTest, SamplesAccessor) {
  MetricsRegistry m;
  m.Observe("d", 1.0);
  m.Observe("d", 2.0);
  EXPECT_EQ(m.samples("d").size(), 2u);
  EXPECT_TRUE(m.samples("other").empty());
}

TEST(MetricsTest, ResetClearsEverything) {
  MetricsRegistry m;
  m.Add("c", 3);
  m.Observe("d", 1.0);
  m.Reset();
  EXPECT_EQ(m.Get("c"), 0);
  EXPECT_EQ(m.Summarize("d").count, 0u);
}

TEST(MetricsTest, ToStringFiltersByPrefix) {
  MetricsRegistry m;
  m.Add("net.msg.PREPARE", 2);
  m.Add("wal.appends", 5);
  std::string all = m.ToString();
  EXPECT_NE(all.find("net.msg.PREPARE = 2"), std::string::npos);
  EXPECT_NE(all.find("wal.appends = 5"), std::string::npos);
  std::string net_only = m.ToString("net.");
  EXPECT_NE(net_only.find("net.msg.PREPARE"), std::string::npos);
  EXPECT_EQ(net_only.find("wal.appends"), std::string::npos);
}

}  // namespace
}  // namespace prany
