#include "common/timeline.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TraceEvent Event(SimTime time, TraceEventKind kind, SiteId site, TxnId txn,
                 std::string label = "") {
  TraceEvent e;
  e.time = time;
  e.kind = kind;
  e.site = site;
  e.txn = txn;
  e.label = std::move(label);
  return e;
}

/// A minimal complete flow: coordinator 0, one participant (site 1).
std::vector<TraceEvent> CompleteFlow() {
  std::vector<TraceEvent> events;
  TraceEvent begin = Event(0, TraceEventKind::kCoordBegin, 0, 1);
  begin.protocol = ProtocolKind::kPrN;
  events.push_back(begin);
  events.push_back(Event(0, TraceEventKind::kMsgSend, 0, 1, "PREPARE"));
  TraceEvent prepared =
      Event(500, TraceEventKind::kWalAppend, 1, 1, "PREPARED");
  prepared.forced = true;
  events.push_back(prepared);
  events.push_back(Event(500, TraceEventKind::kMsgSend, 1, 1, "VOTE"));
  events.push_back(Event(1000, TraceEventKind::kMsgDeliver, 0, 1, "VOTE"));
  TraceEvent decide = Event(1000, TraceEventKind::kCoordDecide, 0, 1);
  decide.outcome = Outcome::kCommit;
  events.push_back(decide);
  TraceEvent commit =
      Event(1000, TraceEventKind::kWalAppend, 0, 1, "DECISION");
  commit.forced = true;
  events.push_back(commit);
  events.push_back(Event(1000, TraceEventKind::kMsgSend, 0, 1, "DECISION"));
  TraceEvent lazy = Event(1500, TraceEventKind::kWalAppend, 1, 1, "DECISION");
  events.push_back(lazy);
  events.push_back(Event(1500, TraceEventKind::kMsgSend, 1, 1, "ACK"));
  events.push_back(Event(2000, TraceEventKind::kMsgDeliver, 0, 1, "ACK"));
  events.push_back(Event(2000, TraceEventKind::kCoordForget, 0, 1));
  return events;
}

TEST(TimelineTest, BuildsPhaseTimestampsAndCounts) {
  auto timelines = BuildTimelines(CompleteFlow());
  ASSERT_EQ(timelines.size(), 1u);
  const TxnTimeline& t = timelines.at(1);

  EXPECT_EQ(t.txn, 1u);
  EXPECT_EQ(t.coordinator, 0u);
  ASSERT_TRUE(t.mode.has_value());
  EXPECT_EQ(*t.mode, ProtocolKind::kPrN);
  ASSERT_TRUE(t.outcome.has_value());
  EXPECT_EQ(*t.outcome, Outcome::kCommit);

  EXPECT_EQ(t.begin, SimTime{0});
  EXPECT_EQ(t.first_prepare_sent, SimTime{0});
  EXPECT_EQ(t.last_vote_delivered, SimTime{1000});
  EXPECT_EQ(t.decided, SimTime{1000});
  EXPECT_EQ(t.last_ack_delivered, SimTime{2000});
  EXPECT_EQ(t.forgotten, SimTime{2000});

  EXPECT_EQ(t.messages, 4u);
  EXPECT_EQ(t.messages_by_type.at("PREPARE"), 1u);
  EXPECT_EQ(t.messages_by_type.at("VOTE"), 1u);
  EXPECT_EQ(t.messages_by_type.at("DECISION"), 1u);
  EXPECT_EQ(t.messages_by_type.at("ACK"), 1u);
  EXPECT_EQ(t.log_appends, 3u);
  EXPECT_EQ(t.forced_writes, 2u);

  EXPECT_TRUE(t.Complete());
  EXPECT_EQ(t.VotingLatency(), SimDuration{1000});
  EXPECT_EQ(t.DecisionLatency(), SimDuration{1000});
  EXPECT_EQ(t.TotalLatency(), SimDuration{2000});
}

TEST(TimelineTest, IncompleteTimelineHasZeroTotalLatency) {
  std::vector<TraceEvent> events = CompleteFlow();
  events.pop_back();  // Drop kCoordForget.
  auto timelines = BuildTimelines(events);
  const TxnTimeline& t = timelines.at(1);
  EXPECT_FALSE(t.Complete());
  EXPECT_EQ(t.TotalLatency(), SimDuration{0});
  EXPECT_EQ(t.DecisionLatency(), SimDuration{0});
  EXPECT_EQ(t.VotingLatency(), SimDuration{1000});  // Decide still present.
}

TEST(TimelineTest, SeparatesInterleavedTransactions) {
  std::vector<TraceEvent> events;
  events.push_back(Event(0, TraceEventKind::kCoordBegin, 0, 1));
  events.push_back(Event(10, TraceEventKind::kCoordBegin, 0, 2));
  events.push_back(Event(20, TraceEventKind::kMsgSend, 0, 2, "PREPARE"));
  events.push_back(Event(30, TraceEventKind::kMsgSend, 0, 1, "PREPARE"));
  // Events without a transaction are skipped.
  events.push_back(Event(40, TraceEventKind::kSiteCrash, 1, kInvalidTxn));
  auto timelines = BuildTimelines(events);
  ASSERT_EQ(timelines.size(), 2u);
  EXPECT_EQ(timelines.at(1).messages, 1u);
  EXPECT_EQ(timelines.at(2).messages, 1u);
  EXPECT_EQ(timelines.at(1).first_prepare_sent, SimTime{30});
  EXPECT_EQ(timelines.at(2).first_prepare_sent, SimTime{20});
}

TEST(TimelineTest, CountsLossesResendsAndInquiries) {
  std::vector<TraceEvent> events;
  events.push_back(Event(0, TraceEventKind::kCoordBegin, 0, 1));
  events.push_back(Event(10, TraceEventKind::kMsgDrop, 0, 1, "DECISION"));
  events.push_back(Event(20, TraceEventKind::kMsgLostDown, 1, 1, "DECISION"));
  events.push_back(Event(30, TraceEventKind::kMsgBlocked, 0, 1, "DECISION"));
  events.push_back(Event(40, TraceEventKind::kCoordResend, 0, 1));
  events.push_back(Event(50, TraceEventKind::kPartInquiry, 1, 1));
  auto timelines = BuildTimelines(events);
  const TxnTimeline& t = timelines.at(1);
  EXPECT_EQ(t.messages_lost, 3u);
  EXPECT_EQ(t.resends, 1u);
  EXPECT_EQ(t.inquiries, 1u);
}

TEST(TimelineTest, ObserveRecordsDistributions) {
  MetricsRegistry metrics;
  auto timelines = BuildTimelines(CompleteFlow());
  RecordTimelineMetrics(timelines, &metrics);

  EXPECT_EQ(metrics.Summarize("txn.messages").count, 1u);
  EXPECT_DOUBLE_EQ(metrics.Summarize("txn.messages").mean, 4.0);
  EXPECT_DOUBLE_EQ(metrics.Summarize("txn.forced_writes").mean, 2.0);
  EXPECT_DOUBLE_EQ(metrics.Summarize("txn.latency.total_us").mean, 2000.0);
  EXPECT_DOUBLE_EQ(metrics.Summarize("txn.latency.voting_us").mean, 1000.0);
  EXPECT_DOUBLE_EQ(metrics.Summarize("txn.latency.decision_us").mean, 1000.0);
  EXPECT_EQ(metrics.Summarize("txn.latency.commit_us").count, 1u);
  EXPECT_EQ(metrics.Summarize("txn.latency.abort_us").count, 0u);
}

TEST(TimelineTest, IncompleteTimelineSkipsLatencyMetrics) {
  std::vector<TraceEvent> events = CompleteFlow();
  events.pop_back();  // Never forgotten (a C2PC-style leak).
  MetricsRegistry metrics;
  RecordTimelineMetrics(BuildTimelines(events), &metrics);
  EXPECT_EQ(metrics.Summarize("txn.messages").count, 1u);
  EXPECT_EQ(metrics.Summarize("txn.latency.total_us").count, 0u);
  EXPECT_EQ(metrics.Summarize("txn.latency.commit_us").count, 0u);
}

}  // namespace
}  // namespace prany
