#include "protocol/protocol_traits.h"

#include <gtest/gtest.h>

#include "protocol/crash_points.h"

namespace prany {
namespace {

// The traits tables ARE Figures 2-4 of the paper; these tests transcribe
// the figures cell by cell.

TEST(TraitsTest, PrNActsOnEverything) {
  const ParticipantTraits& t = TraitsFor(ProtocolKind::kPrN);
  EXPECT_TRUE(t.ack_commit);
  EXPECT_TRUE(t.ack_abort);
  EXPECT_TRUE(t.force_commit_record);
  EXPECT_TRUE(t.force_abort_record);
}

TEST(TraitsTest, PrASkipsAbortSide) {
  const ParticipantTraits& t = TraitsFor(ProtocolKind::kPrA);
  EXPECT_TRUE(t.ack_commit);
  EXPECT_FALSE(t.ack_abort);
  EXPECT_TRUE(t.force_commit_record);
  EXPECT_FALSE(t.force_abort_record);
}

TEST(TraitsTest, PrCSkipsCommitSide) {
  const ParticipantTraits& t = TraitsFor(ProtocolKind::kPrC);
  EXPECT_FALSE(t.ack_commit);
  EXPECT_TRUE(t.ack_abort);
  EXPECT_FALSE(t.force_commit_record);
  EXPECT_TRUE(t.force_abort_record);
}

TEST(TraitsTest, ParticipantAcksMatrix) {
  EXPECT_TRUE(ParticipantAcks(ProtocolKind::kPrN, Outcome::kCommit));
  EXPECT_TRUE(ParticipantAcks(ProtocolKind::kPrN, Outcome::kAbort));
  EXPECT_TRUE(ParticipantAcks(ProtocolKind::kPrA, Outcome::kCommit));
  EXPECT_FALSE(ParticipantAcks(ProtocolKind::kPrA, Outcome::kAbort));
  EXPECT_FALSE(ParticipantAcks(ProtocolKind::kPrC, Outcome::kCommit));
  EXPECT_TRUE(ParticipantAcks(ProtocolKind::kPrC, Outcome::kAbort));
}

TEST(TraitsTest, EachProtocolSkipsExactlyItsPresumedSide) {
  // The structural signature of presumed protocols: the side a protocol
  // does not acknowledge is the side it does not force-log either.
  for (ProtocolKind kind :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    for (Outcome o : {Outcome::kCommit, Outcome::kAbort}) {
      EXPECT_EQ(ParticipantAcks(kind, o), ParticipantForcesDecision(kind, o))
          << ToString(kind) << "/" << ToString(o);
    }
  }
}

TEST(TraitsTest, AckersAmongSplitsTheMixedSet) {
  std::vector<ParticipantInfo> mixed = {{1, ProtocolKind::kPrN},
                                        {2, ProtocolKind::kPrA},
                                        {3, ProtocolKind::kPrC}};
  EXPECT_EQ(AckersAmong(mixed, Outcome::kCommit), (std::set<SiteId>{1, 2}));
  EXPECT_EQ(AckersAmong(mixed, Outcome::kAbort), (std::set<SiteId>{1, 3}));
}

TEST(TraitsTest, AckersAmongHomogeneousSets) {
  std::vector<ParticipantInfo> all_prc = {{1, ProtocolKind::kPrC},
                                          {2, ProtocolKind::kPrC}};
  EXPECT_TRUE(AckersAmong(all_prc, Outcome::kCommit).empty());
  EXPECT_EQ(AckersAmong(all_prc, Outcome::kAbort),
            (std::set<SiteId>{1, 2}));

  std::vector<ParticipantInfo> all_pra = {{1, ProtocolKind::kPrA}};
  EXPECT_EQ(AckersAmong(all_pra, Outcome::kCommit), (std::set<SiteId>{1}));
  EXPECT_TRUE(AckersAmong(all_pra, Outcome::kAbort).empty());
}

TEST(TraitsTest, SitesOf) {
  std::vector<ParticipantInfo> mixed = {{4, ProtocolKind::kPrN},
                                        {2, ProtocolKind::kPrA}};
  EXPECT_EQ(SitesOf(mixed), (std::set<SiteId>{2, 4}));
  EXPECT_TRUE(SitesOf({}).empty());
}

TEST(CrashPointTest, AllPointsHaveNames) {
  for (CrashPoint p : kAllCrashPoints) {
    EXPECT_NE(ToString(p), "unknown");
  }
}

TEST(CrashPointTest, PointListsPartitionTheSpace) {
  EXPECT_EQ(kCoordinatorCrashPoints.size() + kParticipantCrashPoints.size(),
            kAllCrashPoints.size());
  for (CrashPoint p : kCoordinatorCrashPoints) {
    EXPECT_EQ(ToString(p).rfind("coord.", 0), 0u) << ToString(p);
  }
  for (CrashPoint p : kParticipantCrashPoints) {
    EXPECT_EQ(ToString(p).rfind("part.", 0), 0u) << ToString(p);
  }
}

TEST(TraitsDeathTest, NonBaseProtocolAborts) {
  EXPECT_DEATH({ TraitsFor(ProtocolKind::kPrAny); }, "base protocols");
  EXPECT_DEATH({ TraitsFor(ProtocolKind::kU2PC); }, "base protocols");
}

}  // namespace
}  // namespace prany
