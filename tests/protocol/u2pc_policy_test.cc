// U2PC policy behaviour per native protocol, observed through complete
// flows: which outcomes are logged, who is awaited, when the coordinator
// forgets. These pin down the §2 semantics that the integration tests
// then weaponize.

#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace prany {
namespace {

const std::vector<ProtocolKind> kMix = {ProtocolKind::kPrN,
                                        ProtocolKind::kPrA,
                                        ProtocolKind::kPrC};

FlowResult U2pcFlow(ProtocolKind native, Outcome outcome) {
  return RunFlow(ProtocolKind::kU2PC, native, kMix, outcome);
}

TEST(U2pcPolicyTest, PrNNativeLogsEverythingAndAwaitsWillingAckers) {
  FlowResult commit = U2pcFlow(ProtocolKind::kPrN, Outcome::kCommit);
  // Forced decision record + END after the PrN+PrA acks (PrC never acks
  // commits and must not be awaited).
  EXPECT_EQ(commit.coord_appends, 2u);
  EXPECT_EQ(commit.coord_forced, 1u);
  EXPECT_EQ(commit.messages["ACK"], 2);
  EXPECT_TRUE(commit.correct);

  FlowResult abort = U2pcFlow(ProtocolKind::kPrN, Outcome::kAbort);
  EXPECT_EQ(abort.coord_appends, 2u);   // abort record + END
  EXPECT_EQ(abort.messages["ACK"], 2);  // PrN + PrC
  EXPECT_TRUE(abort.correct);
}

TEST(U2pcPolicyTest, PrANativeSkipsAbortBookkeeping) {
  FlowResult abort = U2pcFlow(ProtocolKind::kPrA, Outcome::kAbort);
  // Native PrA: no abort record, no END, no acks awaited — the
  // coordinator forgets the moment the aborts leave...
  EXPECT_EQ(abort.coord_appends, 0u);
  // ...yet the PrN and PrC participants still ack per their own
  // protocols; the coordinator ignores those late acks.
  EXPECT_EQ(abort.messages["ACK"], 2);
  EXPECT_EQ(abort.completion_latency_us, abort.decision_latency_us);
  EXPECT_TRUE(abort.correct);  // failure-free: the flaw is invisible

  FlowResult commit = U2pcFlow(ProtocolKind::kPrA, Outcome::kCommit);
  EXPECT_EQ(commit.coord_appends, 2u);  // commit record + END
  EXPECT_EQ(commit.messages["ACK"], 2);
}

TEST(U2pcPolicyTest, PrCNativeKeepsInitiationDiscipline) {
  FlowResult commit = U2pcFlow(ProtocolKind::kPrC, Outcome::kCommit);
  // Initiation + commit records, both forced; forgets at the commit; the
  // PrN and PrA acks arrive unrequested.
  EXPECT_EQ(commit.coord_appends, 2u);
  EXPECT_EQ(commit.coord_forced, 2u);
  EXPECT_EQ(commit.completion_latency_us, commit.decision_latency_us);
  EXPECT_EQ(commit.messages["ACK"], 2);

  FlowResult abort = U2pcFlow(ProtocolKind::kPrC, Outcome::kAbort);
  // Initiation + END; waits for the PrN and PrC abort acks only.
  EXPECT_EQ(abort.coord_appends, 2u);
  EXPECT_EQ(abort.coord_forced, 1u);
  EXPECT_EQ(abort.messages["ACK"], 2);
  EXPECT_GT(abort.completion_latency_us, abort.decision_latency_us);
}

TEST(U2pcPolicyTest, ModeReportsTheNativeProtocol) {
  for (ProtocolKind native :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    FlowResult r = U2pcFlow(native, Outcome::kCommit);
    EXPECT_EQ(r.mode, native);
  }
}

TEST(U2pcPolicyTest, HomogeneousSetsBehaveExactlyLikeTheNativeProtocol) {
  // With participants that all speak the native protocol, U2PC *is* that
  // protocol: identical message and log counts.
  for (ProtocolKind native :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    for (Outcome outcome : {Outcome::kCommit, Outcome::kAbort}) {
      std::vector<ProtocolKind> homogeneous(3, native);
      FlowResult u2pc = RunFlow(ProtocolKind::kU2PC, native, homogeneous,
                                outcome);
      FlowResult pure = RunFlow(native, native, homogeneous, outcome);
      EXPECT_EQ(u2pc.total_messages, pure.total_messages)
          << ToString(native) << "/" << ToString(outcome);
      EXPECT_EQ(u2pc.coord_appends, pure.coord_appends);
      EXPECT_EQ(u2pc.coord_forced, pure.coord_forced);
      EXPECT_EQ(u2pc.part_forced, pure.part_forced);
    }
  }
}

}  // namespace
}  // namespace prany
