// Reachability coverage for crash_points.h: every named crash point must
// actually be probed (fire at least once) under each protocol, so dead
// instrumentation points — a point the engines stopped passing after a
// refactor — fail CI instead of silently weakening the failure tests and
// the model checker's crash enumeration.

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "harness/system.h"
#include "protocol/crash_points.h"

namespace prany {
namespace {

struct CoverageCase {
  const char* name;
  ProtocolKind coordinator;
  ProtocolKind native;
  std::vector<ProtocolKind> participants;
  /// Points this deployment can never pass (asserted to stay at zero, so
  /// the reachability model itself is pinned).
  std::set<CrashPoint> unreachable;
};

// kCoordAfterInitiationLogged sits inside the WritesInitiation branch:
// only PrC-mode coordinators (PrC, U2PC-native-PrC) and PrAny (which
// force-logs initiation in every mode, §4.2) pass it. C2PC still passes
// kCoordBeforeForget — in a failure-free run every ack arrives, so the
// probe at the entrance of the forget path fires even though the entry
// itself is retained forever (Theorem 2).
const CoverageCase kCases[] = {
    {"PrN", ProtocolKind::kPrN, ProtocolKind::kPrN,
     {ProtocolKind::kPrN, ProtocolKind::kPrN},
     {CrashPoint::kCoordAfterInitiationLogged}},
    {"PrA", ProtocolKind::kPrA, ProtocolKind::kPrN,
     {ProtocolKind::kPrA, ProtocolKind::kPrA},
     {CrashPoint::kCoordAfterInitiationLogged}},
    {"PrC", ProtocolKind::kPrC, ProtocolKind::kPrN,
     {ProtocolKind::kPrC, ProtocolKind::kPrC},
     {}},
    {"U2PC_nativePrN", ProtocolKind::kU2PC, ProtocolKind::kPrN,
     {ProtocolKind::kPrA, ProtocolKind::kPrC},
     {CrashPoint::kCoordAfterInitiationLogged}},
    {"U2PC_nativePrA", ProtocolKind::kU2PC, ProtocolKind::kPrA,
     {ProtocolKind::kPrA, ProtocolKind::kPrC},
     {CrashPoint::kCoordAfterInitiationLogged}},
    {"U2PC_nativePrC", ProtocolKind::kU2PC, ProtocolKind::kPrC,
     {ProtocolKind::kPrA, ProtocolKind::kPrC},
     {}},
    {"C2PC", ProtocolKind::kC2PC, ProtocolKind::kPrN,
     {ProtocolKind::kPrA, ProtocolKind::kPrC},
     {CrashPoint::kCoordAfterInitiationLogged}},
    {"PrAny", ProtocolKind::kPrAny, ProtocolKind::kPrN,
     {ProtocolKind::kPrA, ProtocolKind::kPrC},
     {}},
};

/// Runs one failure-free transaction and accumulates how often every crash
/// point was probed.
void AccumulateProbes(const CoverageCase& c,
                      const std::map<SiteId, Vote>& votes,
                      std::map<CrashPoint, uint64_t>* out) {
  System system(SystemConfig{});
  system.AddSite(ProtocolKind::kPrN, c.coordinator, c.native);
  std::vector<SiteId> participant_sites;
  for (ProtocolKind p : c.participants) {
    participant_sites.push_back(system.AddSite(p)->id());
  }
  system.Submit(0, participant_sites, votes);
  system.Run();
  for (const auto& [point, count] : system.injector().probe_counts()) {
    (*out)[point] += count;
  }
}

class CrashPointCoverageTest : public ::testing::TestWithParam<CoverageCase> {
};

TEST_P(CrashPointCoverageTest, EveryReachablePointProbed) {
  const CoverageCase& c = GetParam();
  // Commit (all yes) plus abort (site 1 votes no) runs together exercise
  // both decision paths.
  std::map<CrashPoint, uint64_t> probes;
  AccumulateProbes(c, {}, &probes);
  AccumulateProbes(c, {{1, Vote::kNo}}, &probes);

  for (CrashPoint point : kAllCrashPoints) {
    const uint64_t count = probes.count(point) ? probes.at(point) : 0;
    if (c.unreachable.count(point) > 0) {
      EXPECT_EQ(count, 0u) << ToString(point)
                           << " was expected unreachable under " << c.name;
    } else {
      EXPECT_GT(count, 0u) << ToString(point) << " was never probed under "
                           << c.name << " — dead instrumentation point";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, CrashPointCoverageTest, ::testing::ValuesIn(kCases),
    [](const ::testing::TestParamInfo<CoverageCase>& info) {
      return std::string(info.param.name);
    });

// Global sanity: no point in the enum is dead everywhere — the union of
// all deployments reaches all 11 points.
TEST(CrashPointCoverageTest, UnionCoversEveryPoint) {
  std::map<CrashPoint, uint64_t> probes;
  for (const CoverageCase& c : kCases) {
    AccumulateProbes(c, {}, &probes);
    AccumulateProbes(c, {{1, Vote::kNo}}, &probes);
  }
  for (CrashPoint point : kAllCrashPoints) {
    EXPECT_GT(probes[point], 0u)
        << ToString(point) << " is dead across every protocol";
  }
}

}  // namespace
}  // namespace prany
