// The inquiry-answering matrix: what each coordinator variant replies
// when asked about a transaction it holds no information about. This is
// the presumption table at the heart of the paper, exercised through the
// real message path (a late inquirer after the coordinator has forgotten
// or never knew the transaction).

#include <gtest/gtest.h>

#include "harness/system.h"

namespace prany {
namespace {

// Sends an INQUIRY from `inquirer` about a transaction the coordinator
// never heard of, and returns the reply outcome.
struct InquiryReplyInfo {
  Outcome outcome;
  bool by_presumption;
};

InquiryReplyInfo AskAboutUnknownTxn(ProtocolKind coordinator_kind,
                                    ProtocolKind native,
                                    ProtocolKind inquirer_protocol) {
  System system;
  system.AddSite(ProtocolKind::kPrN, coordinator_kind, native);
  system.AddSite(inquirer_protocol);
  constexpr TxnId kGhostTxn = 4242;
  system.net().Send(Message::Inquiry(kGhostTxn, 1, 0));
  system.Run();
  const SigEvent* respond = system.history().FirstWhere(
      [](const SigEvent& e) {
        return e.type == SigEventType::kCoordRespond;
      });
  EXPECT_NE(respond, nullptr);
  return InquiryReplyInfo{*respond->outcome, respond->by_presumption};
}

TEST(InquiryMatrixTest, PrNHiddenPresumptionIsAbortForEveryone) {
  for (ProtocolKind inquirer :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    InquiryReplyInfo r =
        AskAboutUnknownTxn(ProtocolKind::kPrN, ProtocolKind::kPrN, inquirer);
    EXPECT_EQ(r.outcome, Outcome::kAbort) << ToString(inquirer);
    EXPECT_TRUE(r.by_presumption);
  }
}

TEST(InquiryMatrixTest, PrAPresumesAbortForEveryone) {
  for (ProtocolKind inquirer :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    InquiryReplyInfo r =
        AskAboutUnknownTxn(ProtocolKind::kPrA, ProtocolKind::kPrA, inquirer);
    EXPECT_EQ(r.outcome, Outcome::kAbort) << ToString(inquirer);
  }
}

TEST(InquiryMatrixTest, PrCPresumesCommitForEveryone) {
  for (ProtocolKind inquirer :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    InquiryReplyInfo r =
        AskAboutUnknownTxn(ProtocolKind::kPrC, ProtocolKind::kPrC, inquirer);
    EXPECT_EQ(r.outcome, Outcome::kCommit) << ToString(inquirer);
  }
}

TEST(InquiryMatrixTest, U2PCAnswersItsNativePresumptionRegardlessOfAsker) {
  // The root cause of Theorem 1 in one assertion block.
  for (ProtocolKind inquirer :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    EXPECT_EQ(AskAboutUnknownTxn(ProtocolKind::kU2PC, ProtocolKind::kPrN,
                                 inquirer)
                  .outcome,
              Outcome::kAbort);
    EXPECT_EQ(AskAboutUnknownTxn(ProtocolKind::kU2PC, ProtocolKind::kPrA,
                                 inquirer)
                  .outcome,
              Outcome::kAbort);
    EXPECT_EQ(AskAboutUnknownTxn(ProtocolKind::kU2PC, ProtocolKind::kPrC,
                                 inquirer)
                  .outcome,
              Outcome::kCommit);
  }
}

TEST(InquiryMatrixTest, PrAnyAdoptsTheInquirersPresumption) {
  // §4.2: "a PrAny coordinator dynamically adopts the presumption of an
  // inquiring participant's protocol."
  EXPECT_EQ(AskAboutUnknownTxn(ProtocolKind::kPrAny, ProtocolKind::kPrN,
                               ProtocolKind::kPrN)
                .outcome,
            Outcome::kAbort);
  EXPECT_EQ(AskAboutUnknownTxn(ProtocolKind::kPrAny, ProtocolKind::kPrN,
                               ProtocolKind::kPrA)
                .outcome,
            Outcome::kAbort);
  EXPECT_EQ(AskAboutUnknownTxn(ProtocolKind::kPrAny, ProtocolKind::kPrN,
                               ProtocolKind::kPrC)
                .outcome,
            Outcome::kCommit);
}

TEST(InquiryMatrixTest, PrAnyAnswersAreMarkedAsPresumed) {
  InquiryReplyInfo r = AskAboutUnknownTxn(
      ProtocolKind::kPrAny, ProtocolKind::kPrN, ProtocolKind::kPrC);
  EXPECT_TRUE(r.by_presumption);
}

TEST(InquiryMatrixTest, C2PCNeverAnswersByPresumption) {
  for (ProtocolKind inquirer :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    InquiryReplyInfo r = AskAboutUnknownTxn(ProtocolKind::kC2PC,
                                            ProtocolKind::kPrN, inquirer);
    // With forced decision logging, "no record" proves "never decided":
    // abort is a sound log-based answer, not a presumption.
    EXPECT_EQ(r.outcome, Outcome::kAbort);
    EXPECT_FALSE(r.by_presumption);
  }
}

TEST(InquiryMatrixTest, LiveEntryAnswersFromTheTableNotThePresumption) {
  // While the transaction is still in the decision phase, every
  // coordinator answers the actual decision — even when it contradicts
  // its presumption (here: PrC coordinator answering "abort").
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrC);
  system.AddSite(ProtocolKind::kPrC);
  system.AddSite(ProtocolKind::kPrC);
  TxnId txn = system.Submit(0, {1, 2}, {{1, Vote::kNo}});
  // The abort decision holds the entry open until both acks arrive; an
  // early inquiry from site 2 is answered from the table.
  system.net().DropNext(MessageType::kDecision, txn, 0, 2);
  system.Run();
  const SigEvent* respond = system.history().FirstWhere(
      [&](const SigEvent& e) {
        return e.txn == txn && e.type == SigEventType::kCoordRespond;
      });
  ASSERT_NE(respond, nullptr);
  EXPECT_EQ(*respond->outcome, Outcome::kAbort);
  EXPECT_FALSE(respond->by_presumption);
  EXPECT_TRUE(system.CheckOperational().ok());
}

TEST(InquiryMatrixTest, InquiryDuringVotingIsDeferred) {
  // An inquiry that lands while the coordinator is still collecting votes
  // gets no reply (the inquirer retries after the decision); the episode
  // is counted for observability.
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA);
  system.AddSite(ProtocolKind::kPrC);
  TxnId txn = system.Submit(0, {1, 2});
  // Lose one vote so the voting phase outlives the first inquiry round
  // (vote timeout 50ms > inquiry interval 20ms).
  system.net().DropNext(MessageType::kVote, txn, 2, 0);
  system.Run();
  EXPECT_GT(system.metrics().Get("coord.inquiry_during_voting"), 0);
  // Everything still terminates correctly via the timeout abort.
  EXPECT_TRUE(system.CheckOperational().ok())
      << system.CheckOperational().ToString();
}

TEST(InquiryMatrixTest, PrAnyUnknownInquirerIsAnsweredAbort) {
  // An inquirer that is not in the PCP (left the federation): abort is
  // the conservative reply, and it is counted for the operator.
  System system;
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  Site* ghost_site = system.AddSite(ProtocolKind::kPrC);
  (void)ghost_site;
  PRANY_CHECK(system.pcp().Size() == 2);
  // Simulate departure: unregister site 1 from the PCP after setup.
  const_cast<PcpTable&>(system.pcp()).UnregisterSite(1).ok();
  system.net().Send(Message::Inquiry(99, 1, 0));
  system.Run();
  const SigEvent* respond = system.history().FirstWhere(
      [](const SigEvent& e) {
        return e.type == SigEventType::kCoordRespond;
      });
  ASSERT_NE(respond, nullptr);
  EXPECT_EQ(*respond->outcome, Outcome::kAbort);
  EXPECT_EQ(system.metrics().Get("prany.unknown_inquirer"), 1);
}

}  // namespace
}  // namespace prany
