#include "protocol/participant.h"

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"
#include "wal/log_analyzer.h"

namespace prany {
namespace {

constexpr SiteId kCoordinator = 0;
constexpr SiteId kSelf = 1;

// Captures everything the participant sends to the coordinator.
class CoordinatorStub : public NetworkEndpoint {
 public:
  void OnMessage(const Message& msg) override { received.push_back(msg); }
  bool IsUp() const override { return true; }
  std::vector<Message> received;

  std::vector<Message> OfType(MessageType type) const {
    std::vector<Message> out;
    for (const Message& m : received) {
      if (m.type == type) out.push_back(m);
    }
    return out;
  }
};

class ParticipantTest : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  ParticipantTest() : sim_(1), net_(&sim_, &metrics_) {
    net_.RegisterEndpoint(kCoordinator, &coordinator_);
    EngineContext ctx;
    ctx.self = kSelf;
    ctx.sim = &sim_;
    ctx.net = &net_;
    ctx.log = &log_;
    ctx.history = &history_;
    ctx.metrics = &metrics_;
    engine_ = std::make_unique<ParticipantEngine>(ctx, GetParam());
  }

  // Runs long enough to deliver any immediate sends but bounded: an
  // in-doubt participant's periodic inquiry timer keeps the event queue
  // non-empty forever by design.
  void Settle() { sim_.Run(10'000, sim_.Now() + 1'000); }

  void Prepare(TxnId txn = 1) {
    engine_->OnPrepare(Message::Prepare(txn, kCoordinator, kSelf));
    Settle();
  }

  void Decide(Outcome outcome, TxnId txn = 1) {
    engine_->OnDecision(
        Message::Decision(txn, kCoordinator, kSelf, outcome));
    Settle();
  }

  std::map<TxnId, TxnLogSummary> LogSummaries() {
    return LogAnalyzer::Analyze(log_.StableRecords());
  }

  Simulator sim_;
  MetricsRegistry metrics_;
  Network net_;
  EventLog history_;
  StableLog log_;
  CoordinatorStub coordinator_;
  std::unique_ptr<ParticipantEngine> engine_;
};

TEST_P(ParticipantTest, YesVoteForcesPreparedRecordFirst) {
  Prepare();
  auto votes = coordinator_.OfType(MessageType::kVote);
  ASSERT_EQ(votes.size(), 1u);
  EXPECT_EQ(votes[0].vote, Vote::kYes);
  // The prepared record is durable (forced) and names the coordinator.
  auto summaries = LogSummaries();
  ASSERT_TRUE(summaries.count(1));
  EXPECT_TRUE(summaries.at(1).has_prepared);
  EXPECT_EQ(summaries.at(1).coordinator, kCoordinator);
  EXPECT_EQ(log_.stats().forced_appends, 1u);
  EXPECT_TRUE(engine_->IsInDoubt(1));
}

TEST_P(ParticipantTest, NoVoteAbortsUnilaterallyWithoutLogging) {
  engine_->SetPlannedVote(1, Vote::kNo);
  Prepare();
  auto votes = coordinator_.OfType(MessageType::kVote);
  ASSERT_EQ(votes.size(), 1u);
  EXPECT_EQ(votes[0].vote, Vote::kNo);
  EXPECT_EQ(log_.stats().appends, 0u);
  EXPECT_FALSE(engine_->IsInDoubt(1));
  // The unilateral abort is a significant event.
  const SigEvent* enforce = history_.FirstWhere([](const SigEvent& e) {
    return e.type == SigEventType::kPartEnforce;
  });
  ASSERT_NE(enforce, nullptr);
  EXPECT_EQ(*enforce->outcome, Outcome::kAbort);
}

TEST_P(ParticipantTest, CommitDecisionEnforcesAndForgets) {
  Prepare();
  Decide(Outcome::kCommit);
  EXPECT_FALSE(engine_->IsInDoubt(1));
  EXPECT_EQ(engine_->ActiveTxns(), 0u);
  const SigEvent* enforce = history_.FirstWhere([](const SigEvent& e) {
    return e.type == SigEventType::kPartEnforce;
  });
  ASSERT_NE(enforce, nullptr);
  EXPECT_EQ(*enforce->outcome, Outcome::kCommit);
  // The participant released and truncated its records.
  EXPECT_TRUE(log_.UnreleasedTxns().empty());
}

TEST_P(ParticipantTest, AckMatrixMatchesTraits) {
  Prepare(1);
  Decide(Outcome::kCommit, 1);
  size_t commit_acks = coordinator_.OfType(MessageType::kAck).size();
  EXPECT_EQ(commit_acks > 0,
            ParticipantAcks(GetParam(), Outcome::kCommit));

  coordinator_.received.clear();
  Prepare(2);
  Decide(Outcome::kAbort, 2);
  size_t abort_acks = coordinator_.OfType(MessageType::kAck).size();
  EXPECT_EQ(abort_acks > 0, ParticipantAcks(GetParam(), Outcome::kAbort));
}

TEST_P(ParticipantTest, DecisionRecordForcedPerTraits) {
  Prepare();
  uint64_t forced_before = log_.stats().forced_appends;
  Decide(Outcome::kCommit);
  uint64_t forced_delta = log_.stats().forced_appends - forced_before;
  EXPECT_EQ(forced_delta,
            ParticipantForcesDecision(GetParam(), Outcome::kCommit) ? 1u
                                                                    : 0u);
}

TEST_P(ParticipantTest, NoMemoryDecisionGetsFootnote5Ack) {
  // Decision for a transaction this participant has no memory of: it must
  // simply acknowledge (if its protocol acknowledges that outcome).
  Decide(Outcome::kCommit, 99);
  size_t acks = coordinator_.OfType(MessageType::kAck).size();
  EXPECT_EQ(acks > 0, ParticipantAcks(GetParam(), Outcome::kCommit));
  EXPECT_EQ(log_.stats().appends, 0u);  // and writes nothing
}

TEST_P(ParticipantTest, InDoubtParticipantInquiresPeriodically) {
  Prepare();
  // No decision arrives; run well past several inquiry intervals.
  sim_.Run(1'000, /*until=*/100'000);
  auto inquiries = coordinator_.OfType(MessageType::kInquiry);
  EXPECT_GE(inquiries.size(), 3u);
  EXPECT_EQ(inquiries[0].to, kCoordinator);
}

TEST_P(ParticipantTest, InquiryStopsAfterDecision) {
  Prepare();
  Decide(Outcome::kCommit);
  size_t inquiries_at_decision =
      coordinator_.OfType(MessageType::kInquiry).size();
  sim_.Run(1'000, /*until=*/200'000);
  EXPECT_EQ(coordinator_.OfType(MessageType::kInquiry).size(),
            inquiries_at_decision);
}

TEST_P(ParticipantTest, InquiryReplyActsAsDecision) {
  Prepare();
  engine_->OnInquiryReply(
      Message::InquiryReply(1, kCoordinator, kSelf, Outcome::kAbort, true));
  Settle();
  EXPECT_FALSE(engine_->IsInDoubt(1));
  const SigEvent* enforce = history_.FirstWhere([](const SigEvent& e) {
    return e.type == SigEventType::kPartEnforce;
  });
  ASSERT_NE(enforce, nullptr);
  EXPECT_EQ(*enforce->outcome, Outcome::kAbort);
}

TEST_P(ParticipantTest, DuplicatePrepareResendsYesVote) {
  Prepare();
  Prepare();
  EXPECT_EQ(coordinator_.OfType(MessageType::kVote).size(), 2u);
  EXPECT_EQ(log_.stats().forced_appends, 1u);  // prepared logged once
}

TEST_P(ParticipantTest, CrashWipesVolatileState) {
  Prepare();
  log_.Crash();
  engine_->Crash();
  EXPECT_EQ(engine_->ActiveTxns(), 0u);
}

TEST_P(ParticipantTest, RecoveryResumesInDoubtTransactions) {
  Prepare();
  log_.Crash();
  engine_->Crash();
  coordinator_.received.clear();
  engine_->Recover();
  sim_.Run(1'000, /*until=*/sim_.Now() + 50'000);
  // Recovery inquires immediately, then keeps inquiring.
  auto inquiries = coordinator_.OfType(MessageType::kInquiry);
  EXPECT_GE(inquiries.size(), 2u);
  EXPECT_TRUE(engine_->IsInDoubt(1));
}

TEST_P(ParticipantTest, RecoveryRedoesDecidedTransactions) {
  // Force both records stable, then crash between decision-write and
  // forgetting (simulated by crashing the engine only).
  Prepare();
  bool forced = ParticipantForcesDecision(GetParam(), Outcome::kAbort);
  log_.Append(LogRecord::Abort(1, LogSide::kParticipant), forced);
  log_.Flush();  // make the abort record stable regardless of traits
  engine_->Crash();
  engine_->Recover();
  Settle();
  EXPECT_FALSE(engine_->IsInDoubt(1));
  EXPECT_TRUE(log_.UnreleasedTxns().empty());
  const SigEvent* enforce = history_.FirstWhere([](const SigEvent& e) {
    return e.type == SigEventType::kPartEnforce;
  });
  ASSERT_NE(enforce, nullptr);
  EXPECT_EQ(*enforce->outcome, Outcome::kAbort);
}

TEST_P(ParticipantTest, LostNonForcedDecisionLeavesInDoubt) {
  // The §2 window: a decision record that was written non-forced is lost
  // in the crash, so the participant must be in doubt again.
  if (ParticipantForcesDecision(GetParam(), Outcome::kAbort)) {
    GTEST_SKIP() << "protocol forces its abort record";
  }
  Prepare();
  log_.Append(LogRecord::Abort(1, LogSide::kParticipant), /*force=*/false);
  log_.Crash();  // abort record gone; prepared record survives
  engine_->Crash();
  coordinator_.received.clear();
  engine_->Recover();
  sim_.Run(100, /*until=*/sim_.Now() + 600);  // deliver the first inquiry
  EXPECT_TRUE(engine_->IsInDoubt(1));
  EXPECT_FALSE(coordinator_.OfType(MessageType::kInquiry).empty());
}

INSTANTIATE_TEST_SUITE_P(AllBaseProtocols, ParticipantTest,
                         ::testing::Values(ProtocolKind::kPrN,
                                           ProtocolKind::kPrA,
                                           ProtocolKind::kPrC),
                         [](const auto& info) {
                           return ToString(info.param);
                         });

TEST(ParticipantDeathTest, NonBaseProtocolAborts) {
  Simulator sim(1);
  MetricsRegistry metrics;
  Network net(&sim, &metrics);
  EventLog history;
  StableLog log;
  EngineContext ctx;
  ctx.self = 1;
  ctx.sim = &sim;
  ctx.net = &net;
  ctx.log = &log;
  ctx.history = &history;
  EXPECT_DEATH({ ParticipantEngine bad(ctx, ProtocolKind::kPrAny); },
               "PrN, PrA or PrC");
}

}  // namespace
}  // namespace prany
