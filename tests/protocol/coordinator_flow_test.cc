// Trace tests: each coordinator variant must produce exactly the message
// and log-write pattern of its figure in the paper (Figures 2-4; PrAny's
// Figure 1 is covered in core/prany_flow_test.cc).

#include <gtest/gtest.h>

#include "common/trace_query.h"
#include "harness/scenario.h"

namespace prany {
namespace {

struct FlowCase {
  ProtocolKind coordinator;
  Outcome outcome;
  size_t n;  // homogeneous participants, same protocol as the coordinator

  // Expected counts.
  int64_t prepares, votes, decisions, acks;
  uint64_t coord_appends, coord_forced;
  uint64_t part_appends, part_forced;
};

std::string CaseName(const ::testing::TestParamInfo<FlowCase>& info) {
  return ToString(info.param.coordinator) + "_" +
         ToString(info.param.outcome) + "_n" +
         std::to_string(info.param.n);
}

class HomogeneousFlowTest : public ::testing::TestWithParam<FlowCase> {};

TEST_P(HomogeneousFlowTest, MatchesFigure) {
  const FlowCase& c = GetParam();
  std::vector<ProtocolKind> participants(c.n, c.coordinator);
  FlowResult r = RunFlow(c.coordinator, ProtocolKind::kPrN, participants,
                         c.outcome);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.mode, c.coordinator);
  EXPECT_EQ(r.messages["PREPARE"], c.prepares);
  EXPECT_EQ(r.messages["VOTE"], c.votes);
  EXPECT_EQ(r.messages["DECISION"], c.decisions);
  EXPECT_EQ(r.messages["ACK"], c.acks);
  EXPECT_EQ(r.messages["INQUIRY"], 0);  // failure-free: nobody in doubt
  EXPECT_EQ(r.coord_appends, c.coord_appends);
  EXPECT_EQ(r.coord_forced, c.coord_forced);
  EXPECT_EQ(r.part_appends, c.part_appends);
  EXPECT_EQ(r.part_forced, c.part_forced);
}

// The same figures, re-checked over the structured trace: the aggregated
// per-transaction timeline must count exactly what the message columns
// predict, and the txn.* distributions must carry the same totals.
TEST_P(HomogeneousFlowTest, TimelineAggregatesMatchFigure) {
  const FlowCase& c = GetParam();
  std::vector<ProtocolKind> participants(c.n, c.coordinator);
  FlowResult r = RunFlow(c.coordinator, ProtocolKind::kPrN, participants,
                         c.outcome);
  ASSERT_TRUE(r.correct);

  const TxnTimeline& t = r.timeline;
  EXPECT_TRUE(t.Complete());
  ASSERT_TRUE(t.mode.has_value());
  EXPECT_EQ(*t.mode, c.coordinator);
  ASSERT_TRUE(t.outcome.has_value());
  EXPECT_EQ(*t.outcome, c.outcome);

  auto sent = [&t](const char* type) -> uint64_t {
    auto it = t.messages_by_type.find(type);
    return it == t.messages_by_type.end() ? 0 : it->second;
  };
  const uint64_t messages =
      static_cast<uint64_t>(c.prepares + c.votes + c.decisions + c.acks);
  EXPECT_EQ(t.messages, messages);
  EXPECT_EQ(sent("PREPARE"), static_cast<uint64_t>(c.prepares));
  EXPECT_EQ(sent("VOTE"), static_cast<uint64_t>(c.votes));
  EXPECT_EQ(sent("DECISION"), static_cast<uint64_t>(c.decisions));
  EXPECT_EQ(sent("ACK"), static_cast<uint64_t>(c.acks));
  EXPECT_EQ(t.log_appends, c.coord_appends + c.part_appends);
  EXPECT_EQ(t.forced_writes, c.coord_forced + c.part_forced);
  EXPECT_EQ(t.messages_lost, 0u);
  EXPECT_EQ(t.inquiries, 0u);

  // The forced writes split across sites exactly as the figure draws them.
  TraceQuery q(r.trace);
  EXPECT_EQ(q.Site(0).Kind(TraceEventKind::kWalAppend).ForcedOnly().Count(),
            c.coord_forced);
  EXPECT_EQ(q.Kind(TraceEventKind::kWalAppend).ForcedOnly().Count() -
                q.Site(0).Kind(TraceEventKind::kWalAppend).ForcedOnly().Count(),
            c.part_forced);

  // The metric distributions fed from the timeline repeat the totals.
  ASSERT_EQ(r.txn_metrics.count("txn.messages"), 1u);
  EXPECT_DOUBLE_EQ(r.txn_metrics.at("txn.messages").mean,
                   static_cast<double>(messages));
  ASSERT_EQ(r.txn_metrics.count("txn.forced_writes"), 1u);
  EXPECT_DOUBLE_EQ(r.txn_metrics.at("txn.forced_writes").mean,
                   static_cast<double>(c.coord_forced + c.part_forced));
  EXPECT_DOUBLE_EQ(r.txn_metrics.at("txn.latency.total_us").mean,
                   static_cast<double>(t.TotalLatency()));
}

// Arrow-for-arrow: the figure's arrows must appear in the trace in order.
// Commit flows decide only after the last vote arrives; abort flows are
// forced while everyone is prepared, so the decision may overtake the
// in-flight votes.
TEST_P(HomogeneousFlowTest, FigureArrowsAppearInOrder) {
  const FlowCase& c = GetParam();
  std::vector<ProtocolKind> participants(c.n, c.coordinator);
  FlowResult r = RunFlow(c.coordinator, ProtocolKind::kPrN, participants,
                         c.outcome);
  ASSERT_TRUE(r.correct);

  std::vector<TraceMatcher> arrows;
  arrows.push_back(TraceMatcher::Of(TraceEventKind::kCoordBegin).WithSite(0));
  arrows.push_back(TraceMatcher::Of(TraceEventKind::kMsgSend)
                       .WithSite(0)
                       .WithPeer(1)
                       .WithLabel("PREPARE"));
  arrows.push_back(TraceMatcher::Of(TraceEventKind::kMsgDeliver)
                       .WithSite(1)
                       .WithLabel("PREPARE"));
  arrows.push_back(TraceMatcher::Of(TraceEventKind::kWalAppend)
                       .WithSite(1)
                       .WithLabel("PREPARED")
                       .WithForced(true));
  arrows.push_back(TraceMatcher::Of(TraceEventKind::kMsgSend)
                       .WithSite(1)
                       .WithLabel("VOTE"));
  if (c.outcome == Outcome::kCommit) {
    arrows.push_back(TraceMatcher::Of(TraceEventKind::kMsgDeliver)
                         .WithSite(0)
                         .WithLabel("VOTE"));
  }
  arrows.push_back(TraceMatcher::Of(TraceEventKind::kCoordDecide)
                       .WithSite(0)
                       .WithOutcome(c.outcome));
  arrows.push_back(TraceMatcher::Of(TraceEventKind::kMsgSend)
                       .WithSite(0)
                       .WithLabel("DECISION"));
  if (c.acks > 0) {
    // Acked flows: the coordinator can forget only after the last ack.
    arrows.push_back(TraceMatcher::Of(TraceEventKind::kMsgDeliver)
                         .WithSite(1)
                         .WithLabel("DECISION"));
    arrows.push_back(TraceMatcher::Of(TraceEventKind::kPartEnforce)
                         .WithSite(1)
                         .WithOutcome(c.outcome));
    arrows.push_back(
        TraceMatcher::Of(TraceEventKind::kMsgSend).WithSite(1).WithLabel(
            "ACK"));
    arrows.push_back(TraceMatcher::Of(TraceEventKind::kMsgDeliver)
                         .WithSite(0)
                         .WithLabel("ACK"));
  }
  arrows.push_back(TraceMatcher::Of(TraceEventKind::kCoordForget).WithSite(0));

  SequenceCheck check = ExpectSequence(r.trace, arrows);
  EXPECT_TRUE(check.ok) << check.error;

  // Ack-free flows forget the instant the decisions are out, so the
  // participant's enforcement lands after the coordinator's forget —
  // check that leg of the figure separately.
  SequenceCheck enforce = ExpectSequence(
      r.trace, {TraceMatcher::Of(TraceEventKind::kMsgDeliver)
                    .WithSite(1)
                    .WithLabel("DECISION"),
                TraceMatcher::Of(TraceEventKind::kPartEnforce)
                    .WithSite(1)
                    .WithOutcome(c.outcome)});
  EXPECT_TRUE(enforce.ok) << enforce.error;

  TraceQuery q(r.trace);
  if (c.acks == 0) {
    // PrA aborts and PrC commits draw no acknowledgement arrows at all.
    EXPECT_TRUE(q.Kind(TraceEventKind::kMsgSend).Label("ACK").Empty());
  }
  // Failure-free flows never lose, resend or inquire.
  EXPECT_TRUE(q.Kind(TraceEventKind::kMsgDrop).Empty());
  EXPECT_TRUE(q.Kind(TraceEventKind::kCoordResend).Empty());
  EXPECT_TRUE(q.Kind(TraceEventKind::kPartInquiry).Empty());
}

INSTANTIATE_TEST_SUITE_P(
    Figures2To4, HomogeneousFlowTest,
    ::testing::Values(
        // Figure 2 — PrN: forced decision record, everyone acks, END.
        FlowCase{ProtocolKind::kPrN, Outcome::kCommit, 2,
                 2, 2, 2, 2, 2, 1, 4, 4},
        FlowCase{ProtocolKind::kPrN, Outcome::kAbort, 2,
                 2, 2, 2, 2, 2, 1, 4, 4},
        FlowCase{ProtocolKind::kPrN, Outcome::kCommit, 4,
                 4, 4, 4, 4, 2, 1, 8, 8},
        // Figure 3 — PrA: aborts leave no coordinator log records and
        // draw no acks; participants do not force abort records.
        FlowCase{ProtocolKind::kPrA, Outcome::kCommit, 2,
                 2, 2, 2, 2, 2, 1, 4, 4},
        FlowCase{ProtocolKind::kPrA, Outcome::kAbort, 2,
                 2, 2, 2, 0, 0, 0, 4, 2},
        FlowCase{ProtocolKind::kPrA, Outcome::kAbort, 4,
                 4, 4, 4, 0, 0, 0, 8, 4},
        // Figure 4 — PrC: forced initiation; commits draw no acks and no
        // END; aborts draw acks from everyone and an END.
        FlowCase{ProtocolKind::kPrC, Outcome::kCommit, 2,
                 2, 2, 2, 0, 2, 2, 4, 2},
        FlowCase{ProtocolKind::kPrC, Outcome::kAbort, 2,
                 2, 2, 2, 2, 2, 1, 4, 4},
        FlowCase{ProtocolKind::kPrC, Outcome::kCommit, 4,
                 4, 4, 4, 0, 2, 2, 8, 4}),
    CaseName);

// The E1-E3 cost table from the paper's evaluation, pinned literally for
// the six homogeneous two-participant flows: total messages and total
// forced writes per transaction, as recorded by the timeline layer.
TEST(TimelineTableTest, MatchesE1ToE3Totals) {
  struct Row {
    ProtocolKind protocol;
    Outcome outcome;
    uint64_t messages;
    uint64_t forced_writes;
  };
  const Row kTable[] = {
      {ProtocolKind::kPrN, Outcome::kCommit, 8, 5},
      {ProtocolKind::kPrN, Outcome::kAbort, 8, 5},
      {ProtocolKind::kPrA, Outcome::kCommit, 8, 5},
      {ProtocolKind::kPrA, Outcome::kAbort, 6, 2},
      {ProtocolKind::kPrC, Outcome::kCommit, 6, 4},
      {ProtocolKind::kPrC, Outcome::kAbort, 8, 5},
  };
  for (const Row& row : kTable) {
    SCOPED_TRACE(ToString(row.protocol) + "/" + ToString(row.outcome));
    FlowResult r = RunFlow(row.protocol, ProtocolKind::kPrN,
                           {row.protocol, row.protocol}, row.outcome);
    ASSERT_TRUE(r.correct);
    EXPECT_EQ(r.timeline.messages, row.messages);
    EXPECT_EQ(r.timeline.forced_writes, row.forced_writes);
    EXPECT_DOUBLE_EQ(r.txn_metrics.at("txn.messages").mean,
                     static_cast<double>(row.messages));
    EXPECT_DOUBLE_EQ(r.txn_metrics.at("txn.forced_writes").mean,
                     static_cast<double>(row.forced_writes));
  }
}

// The log-record signatures that distinguish the presumptions, read off
// the structured trace instead of the WAL counters.
TEST(TimelineTableTest, CoordinatorLogSignatures) {
  auto coord_wal = [](ProtocolKind p, Outcome o) {
    FlowResult r = RunFlow(p, ProtocolKind::kPrN, {p, p}, o);
    EXPECT_TRUE(r.correct);
    return TraceQuery(r.trace).Site(0).Kind(TraceEventKind::kWalAppend);
  };
  // PrN: forced decision record, lazy END once the acks are in.
  TraceQuery prn = coord_wal(ProtocolKind::kPrN, Outcome::kCommit);
  EXPECT_EQ(prn.Label("COMMIT").ForcedOnly().Count(), 1u);
  EXPECT_EQ(prn.Label("END").Count(), 1u);
  EXPECT_EQ(prn.Label("END").ForcedOnly().Count(), 0u);
  // PrA aborts: the coordinator writes nothing at all.
  EXPECT_TRUE(coord_wal(ProtocolKind::kPrA, Outcome::kAbort).Empty());
  // PrC: the initiation record is forced before any PREPARE goes out.
  FlowResult prc = RunFlow(ProtocolKind::kPrC, ProtocolKind::kPrN,
                           {ProtocolKind::kPrC, ProtocolKind::kPrC},
                           Outcome::kCommit);
  ASSERT_TRUE(prc.correct);
  SequenceCheck init_first = ExpectSequence(
      prc.trace, {TraceMatcher::Of(TraceEventKind::kWalAppend)
                      .WithSite(0)
                      .WithLabel("INITIATION")
                      .WithForced(true),
                  TraceMatcher::Of(TraceEventKind::kMsgSend)
                      .WithSite(0)
                      .WithLabel("PREPARE")});
  EXPECT_TRUE(init_first.ok) << init_first.error;
  // PrC commits: no END record, the forgotten state is the presumption.
  EXPECT_TRUE(TraceQuery(prc.trace)
                  .Site(0)
                  .Kind(TraceEventKind::kWalAppend)
                  .Label("END")
                  .Empty());
}

TEST(FlowCostShapeTest, PrCIsCheapestOnCommitsPrAOnAborts) {
  // The classic asymmetry the paper builds on, measured end to end.
  auto total_cost = [](ProtocolKind p, Outcome o) {
    std::vector<ProtocolKind> participants(3, p);
    FlowResult r = RunFlow(p, ProtocolKind::kPrN, participants, o);
    return r.total_messages +
           static_cast<int64_t>(r.coord_forced + r.part_forced);
  };
  // Commits: PrC < PrA == PrN (no commit acks, no forced participant
  // commit records; the initiation record costs one forced write).
  EXPECT_LT(total_cost(ProtocolKind::kPrC, Outcome::kCommit),
            total_cost(ProtocolKind::kPrA, Outcome::kCommit));
  EXPECT_EQ(total_cost(ProtocolKind::kPrA, Outcome::kCommit),
            total_cost(ProtocolKind::kPrN, Outcome::kCommit));
  // Aborts: PrA < PrN and PrA < PrC.
  EXPECT_LT(total_cost(ProtocolKind::kPrA, Outcome::kAbort),
            total_cost(ProtocolKind::kPrN, Outcome::kAbort));
  EXPECT_LT(total_cost(ProtocolKind::kPrA, Outcome::kAbort),
            total_cost(ProtocolKind::kPrC, Outcome::kAbort));
}

TEST(FlowLatencyTest, ForcedWritesLengthenTheCriticalPath) {
  // With a 1ms forced-write cost, a PrC commit completes at the
  // coordinator faster than a PrN commit completes (PrN waits for acks
  // that sit behind each participant's forced commit record).
  std::vector<ProtocolKind> prc(2, ProtocolKind::kPrC);
  std::vector<ProtocolKind> prn(2, ProtocolKind::kPrN);
  FlowResult fast = RunFlow(ProtocolKind::kPrC, ProtocolKind::kPrN, prc,
                            Outcome::kCommit, 1, /*forced_write_latency=*/1000);
  FlowResult slow = RunFlow(ProtocolKind::kPrN, ProtocolKind::kPrN, prn,
                            Outcome::kCommit, 1, /*forced_write_latency=*/1000);
  ASSERT_TRUE(fast.correct);
  ASSERT_TRUE(slow.correct);
  EXPECT_LT(fast.completion_latency_us, slow.completion_latency_us);
}

TEST(FlowTest, SingleParticipantFlows) {
  for (ProtocolKind p :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    for (Outcome o : {Outcome::kCommit, Outcome::kAbort}) {
      FlowResult r = RunFlow(p, ProtocolKind::kPrN, {p}, o);
      EXPECT_TRUE(r.correct) << ToString(p) << "/" << ToString(o);
      EXPECT_EQ(r.messages["PREPARE"], 1);
    }
  }
}

TEST(FlowTest, WideTransactionScalesLinearly) {
  std::vector<ProtocolKind> participants(16, ProtocolKind::kPrN);
  FlowResult r = RunFlow(ProtocolKind::kPrN, ProtocolKind::kPrN,
                         participants, Outcome::kCommit);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.total_messages, 4 * 16);
  EXPECT_EQ(r.part_forced, 32u);
}

TEST(FlowTest, DecisionPrecedesCompletion) {
  std::vector<ProtocolKind> participants(2, ProtocolKind::kPrN);
  FlowResult r = RunFlow(ProtocolKind::kPrN, ProtocolKind::kPrN,
                         participants, Outcome::kCommit);
  EXPECT_GT(r.decision_latency_us, 0.0);
  EXPECT_GT(r.completion_latency_us, r.decision_latency_us);
}

TEST(U2PCFlowTest, FailureFreeHeterogeneousRunsAreCorrect) {
  // Without failures U2PC is indistinguishable from a correct protocol —
  // that is exactly why the paper needs the adversarial schedules of §2.
  for (ProtocolKind native :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    for (Outcome o : {Outcome::kCommit, Outcome::kAbort}) {
      FlowResult r = RunFlow(ProtocolKind::kU2PC, native,
                             {ProtocolKind::kPrA, ProtocolKind::kPrC}, o);
      EXPECT_TRUE(r.correct) << ToString(native) << "/" << ToString(o);
    }
  }
}

TEST(U2PCFlowTest, WaitsOnlyForWillingAckers) {
  // U2PC-PrC abort over {PrA, PrC}: only the PrC participant acks; the
  // run must still complete (the §2 "knowing that the PrA will never
  // acknowledge" adjustment).
  FlowResult r = RunFlow(ProtocolKind::kU2PC, ProtocolKind::kPrC,
                         {ProtocolKind::kPrA, ProtocolKind::kPrC},
                         Outcome::kAbort);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.messages["ACK"], 1);
}

TEST(C2PCFlowTest, MixedCommitNeverCompletes) {
  // Theorem 2 in one flow: the PrC participant never acks the commit, so
  // the C2PC coordinator cannot forget — operational correctness fails
  // even though atomicity holds.
  FlowResult r = RunFlow(ProtocolKind::kC2PC, ProtocolKind::kPrN,
                         {ProtocolKind::kPrA, ProtocolKind::kPrC},
                         Outcome::kCommit);
  EXPECT_FALSE(r.correct);
  EXPECT_EQ(r.completion_latency_us, 0.0);  // no forget event ever
}

TEST(C2PCFlowTest, HomogeneousPrNFlowsComplete) {
  FlowResult r = RunFlow(ProtocolKind::kC2PC, ProtocolKind::kPrN,
                         {ProtocolKind::kPrN, ProtocolKind::kPrN},
                         Outcome::kCommit);
  EXPECT_TRUE(r.correct);
  EXPECT_GT(r.completion_latency_us, 0.0);
}

}  // namespace
}  // namespace prany
