// Trace tests: each coordinator variant must produce exactly the message
// and log-write pattern of its figure in the paper (Figures 2-4; PrAny's
// Figure 1 is covered in core/prany_flow_test.cc).

#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace prany {
namespace {

struct FlowCase {
  ProtocolKind coordinator;
  Outcome outcome;
  size_t n;  // homogeneous participants, same protocol as the coordinator

  // Expected counts.
  int64_t prepares, votes, decisions, acks;
  uint64_t coord_appends, coord_forced;
  uint64_t part_appends, part_forced;
};

std::string CaseName(const ::testing::TestParamInfo<FlowCase>& info) {
  return ToString(info.param.coordinator) + "_" +
         ToString(info.param.outcome) + "_n" +
         std::to_string(info.param.n);
}

class HomogeneousFlowTest : public ::testing::TestWithParam<FlowCase> {};

TEST_P(HomogeneousFlowTest, MatchesFigure) {
  const FlowCase& c = GetParam();
  std::vector<ProtocolKind> participants(c.n, c.coordinator);
  FlowResult r = RunFlow(c.coordinator, ProtocolKind::kPrN, participants,
                         c.outcome);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.mode, c.coordinator);
  EXPECT_EQ(r.messages["PREPARE"], c.prepares);
  EXPECT_EQ(r.messages["VOTE"], c.votes);
  EXPECT_EQ(r.messages["DECISION"], c.decisions);
  EXPECT_EQ(r.messages["ACK"], c.acks);
  EXPECT_EQ(r.messages["INQUIRY"], 0);  // failure-free: nobody in doubt
  EXPECT_EQ(r.coord_appends, c.coord_appends);
  EXPECT_EQ(r.coord_forced, c.coord_forced);
  EXPECT_EQ(r.part_appends, c.part_appends);
  EXPECT_EQ(r.part_forced, c.part_forced);
}

INSTANTIATE_TEST_SUITE_P(
    Figures2To4, HomogeneousFlowTest,
    ::testing::Values(
        // Figure 2 — PrN: forced decision record, everyone acks, END.
        FlowCase{ProtocolKind::kPrN, Outcome::kCommit, 2,
                 2, 2, 2, 2, 2, 1, 4, 4},
        FlowCase{ProtocolKind::kPrN, Outcome::kAbort, 2,
                 2, 2, 2, 2, 2, 1, 4, 4},
        FlowCase{ProtocolKind::kPrN, Outcome::kCommit, 4,
                 4, 4, 4, 4, 2, 1, 8, 8},
        // Figure 3 — PrA: aborts leave no coordinator log records and
        // draw no acks; participants do not force abort records.
        FlowCase{ProtocolKind::kPrA, Outcome::kCommit, 2,
                 2, 2, 2, 2, 2, 1, 4, 4},
        FlowCase{ProtocolKind::kPrA, Outcome::kAbort, 2,
                 2, 2, 2, 0, 0, 0, 4, 2},
        FlowCase{ProtocolKind::kPrA, Outcome::kAbort, 4,
                 4, 4, 4, 0, 0, 0, 8, 4},
        // Figure 4 — PrC: forced initiation; commits draw no acks and no
        // END; aborts draw acks from everyone and an END.
        FlowCase{ProtocolKind::kPrC, Outcome::kCommit, 2,
                 2, 2, 2, 0, 2, 2, 4, 2},
        FlowCase{ProtocolKind::kPrC, Outcome::kAbort, 2,
                 2, 2, 2, 2, 2, 1, 4, 4},
        FlowCase{ProtocolKind::kPrC, Outcome::kCommit, 4,
                 4, 4, 4, 0, 2, 2, 8, 4}),
    CaseName);

TEST(FlowCostShapeTest, PrCIsCheapestOnCommitsPrAOnAborts) {
  // The classic asymmetry the paper builds on, measured end to end.
  auto total_cost = [](ProtocolKind p, Outcome o) {
    std::vector<ProtocolKind> participants(3, p);
    FlowResult r = RunFlow(p, ProtocolKind::kPrN, participants, o);
    return r.total_messages +
           static_cast<int64_t>(r.coord_forced + r.part_forced);
  };
  // Commits: PrC < PrA == PrN (no commit acks, no forced participant
  // commit records; the initiation record costs one forced write).
  EXPECT_LT(total_cost(ProtocolKind::kPrC, Outcome::kCommit),
            total_cost(ProtocolKind::kPrA, Outcome::kCommit));
  EXPECT_EQ(total_cost(ProtocolKind::kPrA, Outcome::kCommit),
            total_cost(ProtocolKind::kPrN, Outcome::kCommit));
  // Aborts: PrA < PrN and PrA < PrC.
  EXPECT_LT(total_cost(ProtocolKind::kPrA, Outcome::kAbort),
            total_cost(ProtocolKind::kPrN, Outcome::kAbort));
  EXPECT_LT(total_cost(ProtocolKind::kPrA, Outcome::kAbort),
            total_cost(ProtocolKind::kPrC, Outcome::kAbort));
}

TEST(FlowLatencyTest, ForcedWritesLengthenTheCriticalPath) {
  // With a 1ms forced-write cost, a PrC commit completes at the
  // coordinator faster than a PrN commit completes (PrN waits for acks
  // that sit behind each participant's forced commit record).
  std::vector<ProtocolKind> prc(2, ProtocolKind::kPrC);
  std::vector<ProtocolKind> prn(2, ProtocolKind::kPrN);
  FlowResult fast = RunFlow(ProtocolKind::kPrC, ProtocolKind::kPrN, prc,
                            Outcome::kCommit, 1, /*forced_write_latency=*/1000);
  FlowResult slow = RunFlow(ProtocolKind::kPrN, ProtocolKind::kPrN, prn,
                            Outcome::kCommit, 1, /*forced_write_latency=*/1000);
  ASSERT_TRUE(fast.correct);
  ASSERT_TRUE(slow.correct);
  EXPECT_LT(fast.completion_latency_us, slow.completion_latency_us);
}

TEST(FlowTest, SingleParticipantFlows) {
  for (ProtocolKind p :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    for (Outcome o : {Outcome::kCommit, Outcome::kAbort}) {
      FlowResult r = RunFlow(p, ProtocolKind::kPrN, {p}, o);
      EXPECT_TRUE(r.correct) << ToString(p) << "/" << ToString(o);
      EXPECT_EQ(r.messages["PREPARE"], 1);
    }
  }
}

TEST(FlowTest, WideTransactionScalesLinearly) {
  std::vector<ProtocolKind> participants(16, ProtocolKind::kPrN);
  FlowResult r = RunFlow(ProtocolKind::kPrN, ProtocolKind::kPrN,
                         participants, Outcome::kCommit);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.total_messages, 4 * 16);
  EXPECT_EQ(r.part_forced, 32u);
}

TEST(FlowTest, DecisionPrecedesCompletion) {
  std::vector<ProtocolKind> participants(2, ProtocolKind::kPrN);
  FlowResult r = RunFlow(ProtocolKind::kPrN, ProtocolKind::kPrN,
                         participants, Outcome::kCommit);
  EXPECT_GT(r.decision_latency_us, 0.0);
  EXPECT_GT(r.completion_latency_us, r.decision_latency_us);
}

TEST(U2PCFlowTest, FailureFreeHeterogeneousRunsAreCorrect) {
  // Without failures U2PC is indistinguishable from a correct protocol —
  // that is exactly why the paper needs the adversarial schedules of §2.
  for (ProtocolKind native :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC}) {
    for (Outcome o : {Outcome::kCommit, Outcome::kAbort}) {
      FlowResult r = RunFlow(ProtocolKind::kU2PC, native,
                             {ProtocolKind::kPrA, ProtocolKind::kPrC}, o);
      EXPECT_TRUE(r.correct) << ToString(native) << "/" << ToString(o);
    }
  }
}

TEST(U2PCFlowTest, WaitsOnlyForWillingAckers) {
  // U2PC-PrC abort over {PrA, PrC}: only the PrC participant acks; the
  // run must still complete (the §2 "knowing that the PrA will never
  // acknowledge" adjustment).
  FlowResult r = RunFlow(ProtocolKind::kU2PC, ProtocolKind::kPrC,
                         {ProtocolKind::kPrA, ProtocolKind::kPrC},
                         Outcome::kAbort);
  EXPECT_TRUE(r.correct);
  EXPECT_EQ(r.messages["ACK"], 1);
}

TEST(C2PCFlowTest, MixedCommitNeverCompletes) {
  // Theorem 2 in one flow: the PrC participant never acks the commit, so
  // the C2PC coordinator cannot forget — operational correctness fails
  // even though atomicity holds.
  FlowResult r = RunFlow(ProtocolKind::kC2PC, ProtocolKind::kPrN,
                         {ProtocolKind::kPrA, ProtocolKind::kPrC},
                         Outcome::kCommit);
  EXPECT_FALSE(r.correct);
  EXPECT_EQ(r.completion_latency_us, 0.0);  // no forget event ever
}

TEST(C2PCFlowTest, HomogeneousPrNFlowsComplete) {
  FlowResult r = RunFlow(ProtocolKind::kC2PC, ProtocolKind::kPrN,
                         {ProtocolKind::kPrN, ProtocolKind::kPrN},
                         Outcome::kCommit);
  EXPECT_TRUE(r.correct);
  EXPECT_GT(r.completion_latency_us, 0.0);
}

}  // namespace
}  // namespace prany
