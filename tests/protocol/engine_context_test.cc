#include "protocol/engine_context.h"

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"

namespace prany {
namespace {

class SinkEndpoint : public NetworkEndpoint {
 public:
  void OnMessage(const Message& msg) override { received.push_back(msg); }
  bool IsUp() const override { return true; }
  std::vector<Message> received;
};

class EngineContextTest : public ::testing::Test {
 protected:
  EngineContextTest() : sim_(1), net_(&sim_, &metrics_) {
    net_.RegisterEndpoint(0, &sink_);
    ctx_.self = 1;
    ctx_.sim = &sim_;
    ctx_.net = &net_;
    ctx_.log = &log_;
    ctx_.history = &history_;
    ctx_.metrics = &metrics_;
  }

  Simulator sim_;
  MetricsRegistry metrics_;
  Network net_;
  EventLog history_;
  StableLog log_;
  SinkEndpoint sink_;
  EngineContext ctx_;
};

TEST_F(EngineContextTest, ImmediateSendGoesStraightToTheNetwork) {
  ctx_.Send(Message::Inquiry(1, 1, 0));
  EXPECT_EQ(net_.stats().messages_sent, 1u);
  sim_.Run();
  EXPECT_EQ(sink_.received.size(), 1u);
}

TEST_F(EngineContextTest, DeferredSendWaitsForTheDelay) {
  ctx_.Send(Message::Inquiry(1, 1, 0), /*delay=*/1'000);
  EXPECT_EQ(net_.stats().messages_sent, 0u);  // not yet on the wire
  sim_.Run();
  EXPECT_EQ(sink_.received.size(), 1u);
  EXPECT_GE(sim_.Now(), 1'000u);
}

TEST_F(EngineContextTest, DeferredSendSuppressedIfSiteWentDown) {
  bool up = true;
  ctx_.is_up = [&up]() { return up; };
  ctx_.Send(Message::Inquiry(1, 1, 0), /*delay=*/1'000);
  sim_.Schedule(500, [&up]() { up = false; });  // crash mid-delay
  sim_.Run();
  EXPECT_EQ(net_.stats().messages_sent, 0u);
  EXPECT_TRUE(sink_.received.empty());
}

TEST_F(EngineContextTest, MaybeCrashWithoutProbeIsFalse) {
  EXPECT_FALSE(ctx_.MaybeCrash(CrashPoint::kPartAfterVoteSent, 1));
}

TEST_F(EngineContextTest, MaybeCrashDelegatesToProbe) {
  std::vector<std::pair<CrashPoint, TxnId>> probed;
  ctx_.crash_probe = [&](CrashPoint point, TxnId txn) {
    probed.push_back({point, txn});
    return txn == 7;
  };
  EXPECT_FALSE(ctx_.MaybeCrash(CrashPoint::kPartAfterVoteSent, 1));
  EXPECT_TRUE(ctx_.MaybeCrash(CrashPoint::kPartOnDecisionReceived, 7));
  ASSERT_EQ(probed.size(), 2u);
  EXPECT_EQ(probed[1].first, CrashPoint::kPartOnDecisionReceived);
}

TEST_F(EngineContextTest, CountIsNullSafe) {
  ctx_.Count("some.metric", 3);
  EXPECT_EQ(metrics_.Get("some.metric"), 3);
  EngineContext bare = ctx_;
  bare.metrics = nullptr;
  bare.Count("other.metric");  // must not crash
}

TEST_F(EngineContextTest, TimingDefaultsAreSane) {
  TimingConfig timing;
  EXPECT_GT(timing.vote_timeout, 0u);
  EXPECT_GT(timing.decision_resend_interval, 0u);
  EXPECT_GT(timing.inquiry_interval, 0u);
  EXPECT_EQ(timing.max_decision_resends, 0u);  // unlimited by default
  // Timeouts comfortably exceed a request-reply round trip at the default
  // 500us one-way latency, so failure-free runs never time out.
  EXPECT_GT(timing.vote_timeout, 2u * 500u * 2u);
}

}  // namespace
}  // namespace prany
