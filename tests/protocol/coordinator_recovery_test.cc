// Coordinator crash-recovery behaviour, protocol by protocol (§4.2 and the
// appendix's per-variant recovery rules).

#include <gtest/gtest.h>

#include "harness/scenario.h"

namespace prany {
namespace {

// Builds coordinator site 0 (`kind`/`native`) plus one site per entry of
// `participants`, submits one all-yes transaction, and applies `crash`.
struct RecoveryRun {
  std::unique_ptr<System> system;
  TxnId txn;
};

RecoveryRun RunWithCoordinatorCrash(
    ProtocolKind kind, ProtocolKind native,
    const std::vector<ProtocolKind>& participants, CrashPoint point,
    SimDuration downtime, bool force_abort = false) {
  SystemConfig cfg;
  cfg.seed = 7;
  auto system = std::make_unique<System>(cfg);
  system->AddSite(ProtocolKind::kPrN, kind, native);
  std::vector<SiteId> sites;
  for (ProtocolKind p : participants) {
    system->AddSite(p);
    sites.push_back(static_cast<SiteId>(sites.size() + 1));
  }
  TxnId txn = system->Submit(0, sites);
  if (force_abort) {
    system->sim().ScheduleAt(800, [sys = system.get(), txn]() {
      sys->site(0)->coordinator()->ForceAbort(txn);
    });
  }
  system->injector().CrashAtPoint(0, point, txn, downtime);
  system->Run();
  return RecoveryRun{std::move(system), txn};
}

int CountDecides(const System& system, TxnId txn, Outcome outcome) {
  int n = 0;
  for (const SigEvent& e : system.history().events()) {
    if (e.txn == txn && e.type == SigEventType::kCoordDecide &&
        *e.outcome == outcome) {
      ++n;
    }
  }
  return n;
}

int CountEnforces(const System& system, TxnId txn, Outcome outcome) {
  int n = 0;
  for (const SigEvent& e : system.history().events()) {
    if (e.txn == txn && e.type == SigEventType::kPartEnforce &&
        *e.outcome == outcome) {
      ++n;
    }
  }
  return n;
}

TEST(PrNRecoveryTest, ReinitiatesLoggedCommitAfterCrash) {
  RecoveryRun r = RunWithCoordinatorCrash(
      ProtocolKind::kPrN, ProtocolKind::kPrN,
      {ProtocolKind::kPrN, ProtocolKind::kPrN},
      CrashPoint::kCoordAfterDecisionMade, /*downtime=*/5'000);
  // Decision was durable before the crash; recovery re-submits it.
  EXPECT_GE(CountDecides(*r.system, r.txn, Outcome::kCommit), 2);
  EXPECT_EQ(CountEnforces(*r.system, r.txn, Outcome::kCommit), 2);
  EXPECT_TRUE(r.system->CheckOperational().ok())
      << r.system->CheckOperational().ToString();
}

TEST(PrNRecoveryTest, VotingPhaseCrashResolvesByHiddenPresumption) {
  // Crash after PREPAREs were sent but before any decision: PrN logs
  // nothing during voting, so the transaction vanishes from the
  // coordinator; in-doubt participants learn "abort" by the hidden
  // presumption.
  RecoveryRun r = RunWithCoordinatorCrash(
      ProtocolKind::kPrN, ProtocolKind::kPrN,
      {ProtocolKind::kPrN, ProtocolKind::kPrN},
      CrashPoint::kCoordAfterPreparesSent, /*downtime=*/200'000);
  EXPECT_EQ(CountEnforces(*r.system, r.txn, Outcome::kAbort), 2);
  EXPECT_EQ(CountEnforces(*r.system, r.txn, Outcome::kCommit), 0);
  EXPECT_GT(r.system->metrics().Get("coord.answered_by_presumption"), 0);
  EXPECT_TRUE(r.system->CheckOperational().ok());
}

TEST(PrARecoveryTest, AbortLeavesNoTraceAndPresumptionCovers) {
  RecoveryRun r = RunWithCoordinatorCrash(
      ProtocolKind::kPrA, ProtocolKind::kPrA,
      {ProtocolKind::kPrA, ProtocolKind::kPrA},
      CrashPoint::kCoordAfterDecisionMade, /*downtime=*/200'000,
      /*force_abort=*/true);
  // Nothing was logged for the abort: exactly one Decide event (recovery
  // re-initiates nothing) and the participants abort via inquiries.
  EXPECT_EQ(CountDecides(*r.system, r.txn, Outcome::kAbort), 1);
  EXPECT_EQ(CountEnforces(*r.system, r.txn, Outcome::kAbort), 2);
  EXPECT_GT(r.system->metrics().Get("coord.answered_by_presumption"), 0);
  EXPECT_TRUE(r.system->CheckOperational().ok());
}

TEST(PrARecoveryTest, CommitIsReinitiatedFromTheLog) {
  RecoveryRun r = RunWithCoordinatorCrash(
      ProtocolKind::kPrA, ProtocolKind::kPrA,
      {ProtocolKind::kPrA, ProtocolKind::kPrA},
      CrashPoint::kCoordAfterDecisionMade, /*downtime=*/5'000);
  EXPECT_GE(CountDecides(*r.system, r.txn, Outcome::kCommit), 2);
  EXPECT_EQ(CountEnforces(*r.system, r.txn, Outcome::kCommit), 2);
  EXPECT_TRUE(r.system->CheckOperational().ok());
}

TEST(PrCRecoveryTest, InitiationOnlyCrashAbortsPerRecoveryRule) {
  // Crash right after the initiation record: no PREPARE ever left the
  // site. Recovery finds the open initiation and re-initiates an abort;
  // participants that never heard of the transaction acknowledge it
  // (footnote 5).
  RecoveryRun r = RunWithCoordinatorCrash(
      ProtocolKind::kPrC, ProtocolKind::kPrC,
      {ProtocolKind::kPrC, ProtocolKind::kPrC},
      CrashPoint::kCoordAfterInitiationLogged, /*downtime=*/5'000);
  EXPECT_EQ(CountDecides(*r.system, r.txn, Outcome::kAbort), 1);
  EXPECT_EQ(CountEnforces(*r.system, r.txn, Outcome::kCommit), 0);
  OperationalReport op = r.system->CheckOperational();
  EXPECT_TRUE(op.ok()) << op.ToString();
  EXPECT_EQ(r.system->site(0)->coordinator()->table().Size(), 0u);
}

TEST(PrCRecoveryTest, LoggedCommitIsCoveredByThePresumption) {
  // Crash after the commit record but before sending it: recovery
  // releases the transaction (the commit record eliminated the
  // initiation) and the in-doubt participants are answered "commit" by
  // presumption.
  RecoveryRun r = RunWithCoordinatorCrash(
      ProtocolKind::kPrC, ProtocolKind::kPrC,
      {ProtocolKind::kPrC, ProtocolKind::kPrC},
      CrashPoint::kCoordAfterDecisionMade, /*downtime=*/200'000);
  EXPECT_EQ(CountDecides(*r.system, r.txn, Outcome::kCommit), 1);
  EXPECT_EQ(CountEnforces(*r.system, r.txn, Outcome::kCommit), 2);
  EXPECT_GT(r.system->metrics().Get("coord.answered_by_presumption"), 0);
  EXPECT_TRUE(r.system->CheckOperational().ok());
}

TEST(C2PCRecoveryTest, StuckEntriesSurviveTheCrash) {
  // A mixed-commit C2PC entry is stuck (the PrC participant never acks);
  // a crash plus recovery must faithfully re-build the stuck entry from
  // the log — C2PC "never forgets", even across failures.
  RecoveryRun r = RunWithCoordinatorCrash(
      ProtocolKind::kC2PC, ProtocolKind::kPrN,
      {ProtocolKind::kPrA, ProtocolKind::kPrC},
      CrashPoint::kCoordAfterDecisionSent, /*downtime=*/5'000);
  EXPECT_TRUE(r.system->CheckAtomicity().ok());
  EXPECT_EQ(r.system->site(0)->coordinator()->table().Size(), 1u);
  EXPECT_FALSE(r.system->CheckOperational().ok());
}

TEST(U2PCRecoveryTest, NativePrCReinitiatesAbortAfterInitiationCrash) {
  RecoveryRun r = RunWithCoordinatorCrash(
      ProtocolKind::kU2PC, ProtocolKind::kPrC,
      {ProtocolKind::kPrA, ProtocolKind::kPrC},
      CrashPoint::kCoordAfterInitiationLogged, /*downtime=*/5'000);
  EXPECT_EQ(CountDecides(*r.system, r.txn, Outcome::kAbort), 1);
  EXPECT_TRUE(r.system->CheckAtomicity().ok());
}

class PureCoordinatorSweepTest
    : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(PureCoordinatorSweepTest, HomogeneousCrashSweepIsFullyCorrect) {
  // Every pure protocol, over its own homogeneous participants, must
  // survive every crash point at every site (the appendix's claim that
  // PrN/PrA/PrC are individually correct).
  std::vector<std::vector<ProtocolKind>> mixes = {
      {GetParam(), GetParam()},
      {GetParam(), GetParam(), GetParam()},
  };
  SweepResult sweep = RunCrashSweep(GetParam(), GetParam(), mixes);
  EXPECT_TRUE(sweep.AllCorrect()) << [&] {
    std::string all;
    for (const auto& d : sweep.failure_descriptions) all += d + "\n";
    return all;
  }();
  // Per mix and outcome: 5 coordinator points + 6 points per participant.
  // n=2 -> 17 targets, n=3 -> 23; two outcomes each.
  EXPECT_EQ(sweep.scenarios, 2u * (17 + 23));
}

INSTANTIATE_TEST_SUITE_P(AllBase, PureCoordinatorSweepTest,
                         ::testing::Values(ProtocolKind::kPrN,
                                           ProtocolKind::kPrA,
                                           ProtocolKind::kPrC),
                         [](const auto& info) {
                           return ToString(info.param);
                         });

}  // namespace
}  // namespace prany
