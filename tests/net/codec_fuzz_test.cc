// Property tests: the wire and log codecs must never crash, hang or
// accept-then-corrupt on arbitrary bytes — they either decode something
// that re-encodes to the same bytes, or they return Corruption.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/message.h"
#include "wal/log_record.h"

namespace prany {
namespace {

std::vector<uint8_t> RandomBytes(Rng* rng, size_t max_len) {
  std::vector<uint8_t> bytes(rng->Uniform(0, max_len));
  for (uint8_t& b : bytes) {
    b = static_cast<uint8_t>(rng->Uniform(0, 255));
  }
  return bytes;
}

TEST(CodecFuzzTest, MessageDecodeNeverCrashesOnRandomBytes) {
  Rng rng(1234);
  int decoded_ok = 0;
  for (int i = 0; i < 20'000; ++i) {
    std::vector<uint8_t> bytes = RandomBytes(&rng, 64);
    Result<Message> decoded = Message::Decode(bytes);
    if (decoded.ok()) {
      ++decoded_ok;
      // Round-trip stability: whatever was accepted re-encodes to the
      // exact input.
      EXPECT_EQ(decoded->Encode(), bytes);
    }
  }
  // Random bytes are overwhelmingly rejected (strict validation).
  EXPECT_LT(decoded_ok, 100);
}

TEST(CodecFuzzTest, LogRecordDecodeNeverCrashesOnRandomBytes) {
  Rng rng(5678);
  for (int i = 0; i < 20'000; ++i) {
    std::vector<uint8_t> bytes = RandomBytes(&rng, 96);
    Result<LogRecord> decoded = LogRecord::Decode(bytes);
    if (decoded.ok()) {
      EXPECT_EQ(decoded->Encode(), bytes);
    }
  }
}

TEST(CodecFuzzTest, MessageBitflipsAreRejectedOrRoundTrip) {
  // Mutate every single byte of a valid frame through several values.
  Rng rng(42);
  std::vector<Message> seeds = {
      Message::Prepare(7, 1, 2),
      Message::MakeVote(7, 2, 1, Vote::kReadOnly),
      Message::InquiryReply(9, 1, 2, Outcome::kAbort, true),
  };
  for (const Message& seed : seeds) {
    std::vector<uint8_t> wire = seed.Encode();
    for (size_t pos = 0; pos < wire.size(); ++pos) {
      for (int trial = 0; trial < 4; ++trial) {
        std::vector<uint8_t> mutated = wire;
        mutated[pos] = static_cast<uint8_t>(rng.Uniform(0, 255));
        Result<Message> decoded = Message::Decode(mutated);
        if (decoded.ok()) {
          EXPECT_EQ(decoded->Encode(), mutated);
        }
      }
    }
  }
}

TEST(CodecFuzzTest, LogRecordTruncationSweep) {
  // Every strict prefix of every record type must be rejected.
  std::vector<LogRecord> records = {
      LogRecord::Initiation(1, ProtocolKind::kPrAny,
                            {{1, ProtocolKind::kPrA},
                             {2, ProtocolKind::kPrC}}),
      LogRecord::Prepared(2, 7),
      LogRecord::DecisionWithParticipants(3, Outcome::kCommit,
                                          {{4, ProtocolKind::kPrN}}),
      LogRecord::Abort(4),
      LogRecord::End(5),
  };
  for (const LogRecord& rec : records) {
    std::vector<uint8_t> bytes = rec.Encode();
    for (size_t cut = 0; cut < bytes.size(); ++cut) {
      std::vector<uint8_t> prefix(bytes.begin(), bytes.begin() + cut);
      EXPECT_FALSE(LogRecord::Decode(prefix).ok())
          << ToString(rec.type) << " cut=" << cut;
    }
  }
}

TEST(CodecFuzzTest, RandomValidMessagesRoundTripExactly) {
  Rng rng(77);
  for (int i = 0; i < 5'000; ++i) {
    Message m;
    m.type = static_cast<MessageType>(rng.Uniform(0, 5));
    m.txn = rng.Uniform(0, ~0ull - 1);
    m.from = static_cast<SiteId>(rng.Uniform(0, 1 << 20));
    m.to = static_cast<SiteId>(rng.Uniform(0, 1 << 20));
    m.vote = static_cast<Vote>(rng.Uniform(0, 2));
    m.outcome = static_cast<Outcome>(rng.Uniform(0, 1));
    m.by_presumption = rng.Bernoulli(0.5);
    Result<Message> decoded = Message::Decode(m.Encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, m);
  }
}

TEST(CodecFuzzTest, RandomValidLogRecordsRoundTripExactly) {
  Rng rng(88);
  for (int i = 0; i < 2'000; ++i) {
    LogRecord rec;
    rec.type = static_cast<LogRecordType>(rng.Uniform(0, 4));
    rec.txn = rng.Uniform(0, ~0ull - 1);
    if (rec.type == LogRecordType::kInitiation) {
      rec.commit_protocol = static_cast<ProtocolKind>(rng.Uniform(0, 5));
    }
    if (rec.type == LogRecordType::kInitiation || rec.IsDecision()) {
      size_t n = rng.Uniform(0, 8);
      for (size_t p = 0; p < n; ++p) {
        rec.participants.push_back(
            {static_cast<SiteId>(rng.Uniform(0, 1000)),
             static_cast<ProtocolKind>(rng.Uniform(0, 2))});
      }
    }
    if (rec.type == LogRecordType::kPrepared) {
      rec.coordinator = static_cast<SiteId>(rng.Uniform(0, 1000));
    }
    // The writing side is free only on decision records; the codec pins it
    // for the other types (kPrepared is participant, the rest coordinator).
    rec.side = rec.IsDecision() && rng.Bernoulli(0.5)
                   ? LogSide::kParticipant
                   : rec.type == LogRecordType::kPrepared
                         ? LogSide::kParticipant
                         : LogSide::kCoordinator;
    Result<LogRecord> decoded = LogRecord::Decode(rec.Encode());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, rec);
  }
}

}  // namespace
}  // namespace prany
