#include "net/message.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(MessageTest, FactoriesSetFields) {
  Message p = Message::Prepare(7, 0, 1);
  EXPECT_EQ(p.type, MessageType::kPrepare);
  EXPECT_EQ(p.txn, 7u);
  EXPECT_EQ(p.from, 0u);
  EXPECT_EQ(p.to, 1u);

  Message v = Message::MakeVote(7, 1, 0, Vote::kNo);
  EXPECT_EQ(v.type, MessageType::kVote);
  EXPECT_EQ(v.vote, Vote::kNo);

  Message d = Message::Decision(7, 0, 1, Outcome::kAbort);
  EXPECT_EQ(d.type, MessageType::kDecision);
  EXPECT_EQ(d.outcome, Outcome::kAbort);

  Message a = Message::Ack(7, 1, 0, Outcome::kCommit);
  EXPECT_EQ(a.type, MessageType::kAck);
  EXPECT_EQ(a.outcome, Outcome::kCommit);

  Message i = Message::Inquiry(7, 1, 0);
  EXPECT_EQ(i.type, MessageType::kInquiry);

  Message r = Message::InquiryReply(7, 0, 1, Outcome::kCommit, true);
  EXPECT_EQ(r.type, MessageType::kInquiryReply);
  EXPECT_TRUE(r.by_presumption);
}

TEST(MessageTest, EncodeDecodeRoundTripAllTypes) {
  std::vector<Message> msgs = {
      Message::Prepare(1, 2, 3),
      Message::MakeVote(4, 5, 6, Vote::kNo),
      Message::Decision(7, 8, 9, Outcome::kCommit),
      Message::Ack(10, 11, 12, Outcome::kAbort),
      Message::Inquiry(13, 14, 15),
      Message::InquiryReply(16, 17, 18, Outcome::kAbort, true),
  };
  for (const Message& m : msgs) {
    Result<Message> decoded = Message::Decode(m.Encode());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, m);
  }
}

TEST(MessageTest, RoundTripExtremeIds) {
  Message m = Message::Prepare(~0ull - 1, ~0u - 1, 0);
  Result<Message> decoded = Message::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, m);
}

TEST(MessageTest, DecodeRejectsTruncatedFrame) {
  std::vector<uint8_t> bytes = Message::Prepare(1, 2, 3).Encode();
  bytes.resize(bytes.size() - 1);
  EXPECT_TRUE(Message::Decode(bytes).status().IsCorruption());
}

TEST(MessageTest, DecodeRejectsTrailingBytes) {
  std::vector<uint8_t> bytes = Message::Prepare(1, 2, 3).Encode();
  bytes.push_back(0x00);
  EXPECT_TRUE(Message::Decode(bytes).status().IsCorruption());
}

TEST(MessageTest, DecodeRejectsBadVersion) {
  std::vector<uint8_t> bytes = Message::Prepare(1, 2, 3).Encode();
  bytes[0] = 99;
  EXPECT_TRUE(Message::Decode(bytes).status().IsCorruption());
}

TEST(MessageTest, DecodeRejectsUnknownType) {
  std::vector<uint8_t> bytes = Message::Prepare(1, 2, 3).Encode();
  bytes[1] = 42;
  EXPECT_TRUE(Message::Decode(bytes).status().IsCorruption());
}

TEST(MessageTest, DecodeRejectsInvalidEnumPayloads) {
  std::vector<uint8_t> bytes = Message::MakeVote(1, 2, 3, Vote::kYes).Encode();
  // vote byte is at offset 1 + 1 + 8 + 4 + 4 = 18.
  bytes[18] = 9;
  EXPECT_TRUE(Message::Decode(bytes).status().IsCorruption());

  bytes = Message::Decision(1, 2, 3, Outcome::kCommit).Encode();
  bytes[19] = 9;  // outcome byte
  EXPECT_TRUE(Message::Decode(bytes).status().IsCorruption());
}

TEST(MessageTest, DecodeEmptyFrame) {
  EXPECT_TRUE(Message::Decode({}).status().IsCorruption());
}

TEST(MessageTest, WireSizeMatchesEncoding) {
  Message m = Message::Ack(1, 2, 3, Outcome::kCommit);
  EXPECT_EQ(m.WireSize(), m.Encode().size());
}

TEST(MessageTest, ToStringIsInformative) {
  EXPECT_EQ(Message::Prepare(7, 3, 1).ToString(), "PREPARE txn=7 3->1");
  EXPECT_EQ(Message::Decision(7, 3, 1, Outcome::kCommit).ToString(),
            "DECISION(commit) txn=7 3->1");
  EXPECT_EQ(Message::MakeVote(7, 1, 3, Vote::kNo).ToString(),
            "VOTE(no) txn=7 1->3");
  EXPECT_EQ(Message::InquiryReply(7, 3, 1, Outcome::kAbort, true).ToString(),
            "INQUIRY_REPLY(abort,presumed) txn=7 3->1");
}

TEST(MessageTest, TypeNames) {
  EXPECT_EQ(ToString(MessageType::kPrepare), "PREPARE");
  EXPECT_EQ(ToString(MessageType::kVote), "VOTE");
  EXPECT_EQ(ToString(MessageType::kDecision), "DECISION");
  EXPECT_EQ(ToString(MessageType::kAck), "ACK");
  EXPECT_EQ(ToString(MessageType::kInquiry), "INQUIRY");
  EXPECT_EQ(ToString(MessageType::kInquiryReply), "INQUIRY_REPLY");
}

}  // namespace
}  // namespace prany
