#include "net/latency_model.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

TEST(LatencyModelTest, FixedIsConstant) {
  Rng rng(1);
  FixedLatency model(250);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(model.Draw(&rng, 100), 250u);
  }
}

TEST(LatencyModelTest, FixedIgnoresSize) {
  Rng rng(1);
  FixedLatency model(250);
  EXPECT_EQ(model.Draw(&rng, 0), model.Draw(&rng, 1 << 20));
}

TEST(LatencyModelTest, UniformStaysInRange) {
  Rng rng(2);
  UniformLatency model(100, 200);
  for (int i = 0; i < 1000; ++i) {
    SimDuration d = model.Draw(&rng, 10);
    EXPECT_GE(d, 100u);
    EXPECT_LE(d, 200u);
  }
}

TEST(LatencyModelTest, UniformDegenerate) {
  Rng rng(2);
  UniformLatency model(150, 150);
  EXPECT_EQ(model.Draw(&rng, 10), 150u);
}

TEST(LatencyModelTest, ExponentialAtLeastBase) {
  Rng rng(3);
  ExponentialLatency model(100, 50.0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(model.Draw(&rng, 10), 100u);
  }
}

TEST(LatencyModelTest, ExponentialMeanRoughlyBasePlusTail) {
  Rng rng(4);
  ExponentialLatency model(100, 50.0);
  double sum = 0;
  constexpr int kTrials = 20'000;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(model.Draw(&rng, 10));
  }
  EXPECT_NEAR(sum / kTrials, 150.0, 5.0);
}

TEST(LatencyModelTest, BandwidthScalesWithSize) {
  Rng rng(5);
  BandwidthLatency model(100, /*bytes_per_us=*/10.0);
  EXPECT_EQ(model.Draw(&rng, 0), 100u);
  EXPECT_EQ(model.Draw(&rng, 100), 110u);
  EXPECT_EQ(model.Draw(&rng, 1000), 200u);
}

TEST(LatencyModelDeathTest, InvalidConstructionAborts) {
  EXPECT_DEATH({ UniformLatency bad(10, 5); }, "PRANY_CHECK");
  EXPECT_DEATH({ ExponentialLatency bad(0, 0.0); }, "PRANY_CHECK");
  EXPECT_DEATH({ BandwidthLatency bad(0, 0.0); }, "PRANY_CHECK");
}

}  // namespace
}  // namespace prany
