// Property test for the socket transport's wire framing: any frame
// sequence, cut into arbitrary TCP-segment-shaped chunks, must round-trip
// byte-identically through FrameParser — including chunks that split the
// length prefix and frames spanning many chunks.

#include "net/wire.h"

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "net/message.h"

namespace prany {
namespace net {
namespace {

/// One message of every type, fields varied so the bytes differ.
std::vector<Message> AllMessageTypes(uint64_t salt) {
  TxnId txn = 1000 + salt;
  SiteId a = static_cast<SiteId>(salt % 5);
  SiteId b = static_cast<SiteId>((salt + 1) % 5);
  return {
      Message::Prepare(txn, a, b),
      Message::MakeVote(txn, b, a, salt % 2 ? Vote::kYes : Vote::kNo),
      Message::Decision(txn, a, b,
                        salt % 3 ? Outcome::kCommit : Outcome::kAbort),
      Message::Ack(txn, b, a, salt % 3 ? Outcome::kCommit : Outcome::kAbort),
      Message::Inquiry(txn, b, a),
      Message::InquiryReply(txn, a, b, Outcome::kAbort, salt % 2 == 0),
  };
}

/// Feeds `stream` to a parser in the given chunk sizes and returns every
/// frame produced, asserting no parse error.
std::vector<Frame> ParseInChunks(const std::vector<uint8_t>& stream,
                                 const std::vector<size_t>& chunks) {
  FrameParser parser;
  std::vector<Frame> frames;
  size_t pos = 0;
  for (size_t chunk : chunks) {
    parser.Feed(stream.data() + pos, chunk);
    pos += chunk;
    while (true) {
      Frame frame;
      bool got = false;
      Status s = parser.Next(&frame, &got);
      EXPECT_TRUE(s.ok()) << s.ToString();
      if (!got) break;
      frames.push_back(std::move(frame));
    }
  }
  EXPECT_EQ(pos, stream.size());
  return frames;
}

TEST(WireTest, EveryMessageTypeRoundTripsThroughEverySplitPoint) {
  // One frame per message type, then every possible 2-chunk split of the
  // whole stream — each prefix byte position, so every offset inside the
  // length prefix and the body is a chunk boundary once.
  std::vector<Message> msgs = AllMessageTypes(7);
  std::vector<uint8_t> stream;
  for (const Message& m : msgs) AppendFrame(&stream, FrameType::kMessage,
                                            m.Encode());
  for (size_t cut = 0; cut <= stream.size(); ++cut) {
    std::vector<Frame> frames =
        ParseInChunks(stream, {cut, stream.size() - cut});
    ASSERT_EQ(frames.size(), msgs.size()) << "cut at " << cut;
    for (size_t i = 0; i < msgs.size(); ++i) {
      ASSERT_EQ(frames[i].type, FrameType::kMessage);
      Result<Message> decoded = Message::Decode(frames[i].body);
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(*decoded, msgs[i]) << "cut at " << cut << " frame " << i;
    }
  }
}

TEST(WireTest, RandomSegmentationRoundTripsIncludingControlFrames) {
  std::mt19937_64 rng(0xfeedfaceull);
  for (int round = 0; round < 200; ++round) {
    // A random interleaving of message and control frames.
    std::vector<Message> msgs;
    std::vector<std::vector<uint8_t>> controls;
    std::vector<FrameType> order;
    std::vector<uint8_t> stream;
    size_t n_frames = 1 + rng() % 24;
    for (size_t i = 0; i < n_frames; ++i) {
      if (rng() % 4 == 0) {
        std::vector<uint8_t> body(rng() % 64);
        for (uint8_t& byte : body) byte = static_cast<uint8_t>(rng());
        AppendFrame(&stream, FrameType::kControl, body);
        controls.push_back(std::move(body));
        order.push_back(FrameType::kControl);
      } else {
        std::vector<Message> all = AllMessageTypes(rng());
        Message m = all[rng() % all.size()];
        AppendFrame(&stream, FrameType::kMessage, m.Encode());
        msgs.push_back(m);
        order.push_back(FrameType::kMessage);
      }
    }
    // Cut the stream into random segments, 1 byte to a few frames long.
    std::vector<size_t> chunks;
    size_t left = stream.size();
    while (left > 0) {
      size_t take = 1 + rng() % 97;
      if (take > left) take = left;
      chunks.push_back(take);
      left -= take;
    }
    std::vector<Frame> frames = ParseInChunks(stream, chunks);
    ASSERT_EQ(frames.size(), order.size());
    size_t mi = 0, ci = 0;
    for (size_t i = 0; i < frames.size(); ++i) {
      ASSERT_EQ(frames[i].type, order[i]);
      if (order[i] == FrameType::kMessage) {
        Result<Message> decoded = Message::Decode(frames[i].body);
        ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
        EXPECT_EQ(*decoded, msgs[mi++]);
      } else {
        EXPECT_EQ(frames[i].body, controls[ci++]);
      }
    }
  }
}

TEST(WireTest, PartialPrefixYieldsNothingUntilComplete) {
  std::vector<uint8_t> stream;
  AppendFrame(&stream, FrameType::kMessage,
              Message::Prepare(1, 0, 1).Encode());
  FrameParser parser;
  Frame frame;
  bool got = true;
  // Byte-at-a-time: nothing may be produced before the last byte.
  for (size_t i = 0; i + 1 < stream.size(); ++i) {
    parser.Feed(&stream[i], 1);
    ASSERT_TRUE(parser.Next(&frame, &got).ok());
    EXPECT_FALSE(got) << "frame produced early at byte " << i;
  }
  parser.Feed(&stream[stream.size() - 1], 1);
  ASSERT_TRUE(parser.Next(&frame, &got).ok());
  EXPECT_TRUE(got);
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(WireTest, ZeroAndOversizedLengthsAreStickyCorruption) {
  {
    FrameParser parser;
    const uint8_t zeros[4] = {0, 0, 0, 0};
    parser.Feed(zeros, sizeof(zeros));
    Frame frame;
    bool got = false;
    EXPECT_FALSE(parser.Next(&frame, &got).ok());
    EXPECT_FALSE(got);
    // Sticky: feeding valid bytes afterwards does not revive the stream.
    std::vector<uint8_t> good;
    AppendFrame(&good, FrameType::kMessage,
                Message::Prepare(1, 0, 1).Encode());
    parser.Feed(good.data(), good.size());
    EXPECT_FALSE(parser.Next(&frame, &got).ok());
    // Reset models a fresh connection: the parser works again.
    parser.Reset();
    parser.Feed(good.data(), good.size());
    EXPECT_TRUE(parser.Next(&frame, &got).ok());
    EXPECT_TRUE(got);
  }
  {
    FrameParser parser;
    uint32_t huge = kMaxFramePayload + 2;
    uint8_t prefix[4];
    for (size_t i = 0; i < 4; ++i) {
      prefix[i] = static_cast<uint8_t>(huge >> (8 * i));
    }
    parser.Feed(prefix, sizeof(prefix));
    Frame frame;
    bool got = false;
    EXPECT_FALSE(parser.Next(&frame, &got).ok());
  }
}

TEST(WireTest, TornTailIsSimplyBuffered) {
  // A frame cut off mid-body (connection died) leaves buffered bytes and
  // no frame — the transport drops them with the connection via Reset().
  std::vector<uint8_t> stream;
  AppendFrame(&stream, FrameType::kMessage,
              Message::Decision(9, 2, 3, Outcome::kAbort).Encode());
  FrameParser parser;
  parser.Feed(stream.data(), stream.size() - 3);
  Frame frame;
  bool got = false;
  ASSERT_TRUE(parser.Next(&frame, &got).ok());
  EXPECT_FALSE(got);
  EXPECT_GT(parser.buffered(), 0u);
  parser.Reset();
  EXPECT_EQ(parser.buffered(), 0u);
}

}  // namespace
}  // namespace net
}  // namespace prany
