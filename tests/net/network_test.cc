#include "net/network.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

// Test endpoint that records deliveries and can be taken down.
class RecordingEndpoint : public NetworkEndpoint {
 public:
  void OnMessage(const Message& msg) override { received.push_back(msg); }
  bool IsUp() const override { return up; }

  std::vector<Message> received;
  bool up = true;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : sim_(1), net_(&sim_, &metrics_) {
    net_.RegisterEndpoint(0, &a_);
    net_.RegisterEndpoint(1, &b_);
  }

  Simulator sim_;
  MetricsRegistry metrics_;
  Network net_;
  RecordingEndpoint a_;
  RecordingEndpoint b_;
};

TEST_F(NetworkTest, DeliversWithDefaultLatency) {
  net_.Send(Message::Prepare(1, 0, 1));
  sim_.Run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].type, MessageType::kPrepare);
  EXPECT_EQ(sim_.Now(), 500u);  // default FixedLatency(500)
}

TEST_F(NetworkTest, CustomDefaultLatency) {
  net_.SetDefaultLatency(std::make_unique<FixedLatency>(1234));
  net_.Send(Message::Prepare(1, 0, 1));
  sim_.Run();
  EXPECT_EQ(sim_.Now(), 1234u);
}

TEST_F(NetworkTest, PerLinkLatencyOverride) {
  net_.SetLinkLatency(0, 1, std::make_unique<FixedLatency>(50));
  net_.Send(Message::Prepare(1, 0, 1));
  net_.Send(Message::Prepare(2, 1, 0));  // uses default 500
  sim_.Run();
  ASSERT_EQ(b_.received.size(), 1u);
  ASSERT_EQ(a_.received.size(), 1u);
  EXPECT_EQ(sim_.Now(), 500u);
}

TEST_F(NetworkTest, DropProbabilityOneDropsEverything) {
  net_.SetDropProbability(1.0);
  for (int i = 0; i < 10; ++i) net_.Send(Message::Prepare(i, 0, 1));
  sim_.Run();
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(net_.stats().messages_dropped, 10u);
  EXPECT_EQ(net_.stats().messages_delivered, 0u);
}

TEST_F(NetworkTest, DuplicateProbabilityOneDeliversTwice) {
  net_.SetDuplicateProbability(1.0);
  net_.Send(Message::Prepare(1, 0, 1));
  sim_.Run();
  EXPECT_EQ(b_.received.size(), 2u);
  EXPECT_EQ(net_.stats().messages_duplicated, 1u);
}

TEST_F(NetworkTest, DownDestinationLosesMessage) {
  b_.up = false;
  net_.Send(Message::Prepare(1, 0, 1));
  sim_.Run();
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(net_.stats().messages_lost_down, 1u);
}

TEST_F(NetworkTest, DownAtSendUpAtDeliveryIsDelivered) {
  // Liveness is evaluated at delivery time, not send time.
  b_.up = false;
  net_.Send(Message::Prepare(1, 0, 1));
  sim_.Schedule(100, [this]() { b_.up = true; });
  sim_.Run();
  EXPECT_EQ(b_.received.size(), 1u);
}

TEST_F(NetworkTest, PartitionBlocksBothDirections) {
  net_.Partition({0}, {1});
  net_.Send(Message::Prepare(1, 0, 1));
  net_.Send(Message::Prepare(2, 1, 0));
  sim_.Run();
  EXPECT_TRUE(a_.received.empty());
  EXPECT_TRUE(b_.received.empty());
  EXPECT_EQ(net_.stats().messages_blocked, 2u);
}

TEST_F(NetworkTest, HealPartitionRestoresDelivery) {
  net_.Partition({0}, {1});
  net_.Send(Message::Prepare(1, 0, 1));
  net_.HealPartition();
  net_.Send(Message::Prepare(2, 0, 1));
  sim_.Run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0].txn, 2u);
}

TEST_F(NetworkTest, PartitionDoesNotAffectThirdParties) {
  RecordingEndpoint c;
  net_.RegisterEndpoint(2, &c);
  net_.Partition({0}, {1});
  net_.Send(Message::Prepare(1, 0, 2));
  sim_.Run();
  EXPECT_EQ(c.received.size(), 1u);
}

TEST_F(NetworkTest, TargetedDropIsOneShot) {
  net_.DropNext(MessageType::kAck, 7, 1, 0);
  net_.Send(Message::Ack(7, 1, 0, Outcome::kCommit));  // dropped
  net_.Send(Message::Ack(7, 1, 0, Outcome::kCommit));  // delivered
  sim_.Run();
  EXPECT_EQ(a_.received.size(), 1u);
  EXPECT_EQ(net_.stats().messages_dropped, 1u);
}

TEST_F(NetworkTest, TargetedDropMatchesExactly) {
  net_.DropNext(MessageType::kAck, 7, 1, 0);
  net_.Send(Message::Ack(8, 1, 0, Outcome::kCommit));  // wrong txn
  net_.Send(Message::Prepare(7, 1, 0));                // wrong type
  sim_.Run();
  EXPECT_EQ(a_.received.size(), 2u);
  EXPECT_EQ(net_.stats().messages_dropped, 0u);
}

TEST_F(NetworkTest, StatsCountSendsAndBytes) {
  net_.Send(Message::Prepare(1, 0, 1));
  net_.Send(Message::Prepare(2, 1, 0));
  sim_.Run();
  EXPECT_EQ(net_.stats().messages_sent, 2u);
  EXPECT_EQ(net_.stats().messages_delivered, 2u);
  EXPECT_GT(net_.stats().bytes_sent, 0u);
}

TEST_F(NetworkTest, MetricsCountPerMessageType) {
  net_.Send(Message::Prepare(1, 0, 1));
  net_.Send(Message::Prepare(2, 0, 1));
  net_.Send(Message::Ack(1, 1, 0, Outcome::kCommit));
  sim_.Run();
  EXPECT_EQ(metrics_.Get("net.msg.PREPARE"), 2);
  EXPECT_EQ(metrics_.Get("net.msg.ACK"), 1);
}

TEST_F(NetworkTest, FifoLinksPreserveSendOrderUnderJitter) {
  net_.SetDefaultLatency(std::make_unique<UniformLatency>(10, 10'000));
  for (TxnId i = 0; i < 50; ++i) {
    net_.Send(Message::Prepare(i, 0, 1));
  }
  sim_.Run();
  ASSERT_EQ(b_.received.size(), 50u);
  for (TxnId i = 0; i < 50; ++i) {
    EXPECT_EQ(b_.received[i].txn, i);
  }
}

TEST_F(NetworkTest, FifoOrderingIsPerDirectedLink) {
  // A slow 0->1 message must not delay 1->0 traffic.
  net_.SetLinkLatency(0, 1, std::make_unique<FixedLatency>(10'000));
  net_.SetLinkLatency(1, 0, std::make_unique<FixedLatency>(100));
  net_.Send(Message::Prepare(1, 0, 1));
  net_.Send(Message::MakeVote(1, 1, 0, Vote::kYes));
  sim_.Step();  // first delivery
  EXPECT_EQ(a_.received.size(), 1u);  // the fast reverse-direction message
  EXPECT_TRUE(b_.received.empty());
  sim_.Run();
  EXPECT_EQ(b_.received.size(), 1u);
}

TEST_F(NetworkTest, NonFifoModeAllowsOvertaking) {
  net_.SetFifoLinks(false);
  // First message slow, second fast: the second overtakes.
  net_.SetLinkLatency(0, 1, std::make_unique<FixedLatency>(10'000));
  net_.Send(Message::Prepare(1, 0, 1));
  net_.SetLinkLatency(0, 1, std::make_unique<FixedLatency>(100));
  net_.Send(Message::Decision(1, 0, 1, Outcome::kAbort));
  sim_.Run();
  ASSERT_EQ(b_.received.size(), 2u);
  EXPECT_EQ(b_.received[0].type, MessageType::kDecision);
  EXPECT_EQ(b_.received[1].type, MessageType::kPrepare);
}

TEST_F(NetworkTest, FifoModeClampsTheLaterSend) {
  // Same shape as above but with FIFO (the default): send order holds.
  net_.SetLinkLatency(0, 1, std::make_unique<FixedLatency>(10'000));
  net_.Send(Message::Prepare(1, 0, 1));
  net_.SetLinkLatency(0, 1, std::make_unique<FixedLatency>(100));
  net_.Send(Message::Decision(1, 0, 1, Outcome::kAbort));
  sim_.Run();
  ASSERT_EQ(b_.received.size(), 2u);
  EXPECT_EQ(b_.received[0].type, MessageType::kPrepare);
  EXPECT_EQ(b_.received[1].type, MessageType::kDecision);
}

TEST_F(NetworkTest, MessageSurvivesWireRoundTrip) {
  Message m = Message::InquiryReply(9, 0, 1, Outcome::kAbort, true);
  net_.Send(m);
  sim_.Run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_EQ(b_.received[0], m);
}

}  // namespace
}  // namespace prany
