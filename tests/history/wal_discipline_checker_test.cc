// WAL discipline oracle: clean protocol runs must produce zero violations,
// and synthetic traces violating each rule must be flagged.

#include "history/wal_discipline_checker.h"

#include <gtest/gtest.h>

#include "harness/system.h"

namespace prany {
namespace {

TraceEvent Append(SiteId site, TxnId txn, const char* label, bool forced) {
  TraceEvent e;
  e.kind = TraceEventKind::kWalAppend;
  e.site = site;
  e.txn = txn;
  e.label = label;
  e.forced = forced;
  return e;
}

TraceEvent Send(SiteId site, TxnId txn, const char* label,
                std::optional<Outcome> outcome = std::nullopt,
                const char* detail = "") {
  TraceEvent e;
  e.kind = TraceEventKind::kMsgSend;
  e.site = site;
  e.txn = txn;
  e.label = label;
  e.outcome = outcome;
  e.detail = detail;
  return e;
}

TraceEvent Enforce(SiteId site, TxnId txn, Outcome outcome) {
  TraceEvent e;
  e.kind = TraceEventKind::kPartEnforce;
  e.site = site;
  e.txn = txn;
  e.outcome = outcome;
  return e;
}

bool HasRule(const WalDisciplineReport& report, const std::string& rule) {
  for (const WalViolation& v : report.violations) {
    if (v.rule == rule) return true;
  }
  return false;
}

TEST(WalDisciplineCheckerTest, CleanRunsOfEveryProtocolPass) {
  for (ProtocolKind kind :
       {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC,
        ProtocolKind::kPrAny}) {
    System system(SystemConfig{});
    system.sim().trace().Enable();
    system.AddSite(ProtocolKind::kPrN, kind);
    std::map<SiteId, ProtocolKind> protocols;
    std::vector<SiteId> participants;
    for (ProtocolKind p : kind == ProtocolKind::kPrAny
                              ? std::vector<ProtocolKind>{ProtocolKind::kPrA,
                                                          ProtocolKind::kPrC}
                              : std::vector<ProtocolKind>{kind, kind}) {
      SiteId id = system.AddSite(p)->id();
      participants.push_back(id);
      protocols[id] = p;
    }
    system.Submit(0, participants);
    system.Submit(0, participants, {{1, Vote::kNo}});
    system.Run();
    WalDisciplineReport report =
        WalDisciplineChecker::Check(system.sim().trace().events(), protocols);
    EXPECT_TRUE(report.ok()) << ToString(kind) << ":\n" << report.ToString();
    EXPECT_GT(report.events_checked, 0u);
  }
}

TEST(WalDisciplineCheckerTest, FlagsUnforcedDecisionBeforeSend) {
  // R1: the commit record exists but was never forced before DECISION went
  // out.
  std::vector<TraceEvent> trace = {
      Append(0, 1, "COMMIT", /*forced=*/false),
      Send(0, 1, "DECISION", Outcome::kCommit),
  };
  WalDisciplineReport report = WalDisciplineChecker::Check(trace, {});
  EXPECT_TRUE(HasRule(report, "force-before-send")) << report.ToString();
}

TEST(WalDisciplineCheckerTest, FlagsDecisionSentBeforeForce) {
  // R1: forced, but in the wrong order.
  std::vector<TraceEvent> trace = {
      Send(0, 1, "DECISION", Outcome::kAbort),
      Append(0, 1, "ABORT", /*forced=*/true),
  };
  WalDisciplineReport report = WalDisciplineChecker::Check(trace, {});
  EXPECT_TRUE(HasRule(report, "force-before-send")) << report.ToString();
}

TEST(WalDisciplineCheckerTest, FlagsYesVoteWithoutForcedPrepared) {
  // R2: yes vote with no PREPARED record at all...
  std::vector<TraceEvent> no_prepared = {
      Send(1, 1, "VOTE", std::nullopt, "yes"),
  };
  EXPECT_TRUE(HasRule(WalDisciplineChecker::Check(no_prepared, {}),
                      "prepared-before-vote"));
  // ...or with the PREPARED record after the vote.
  std::vector<TraceEvent> late_prepared = {
      Send(1, 1, "VOTE", std::nullopt, "yes"),
      Append(1, 1, "PREPARED", /*forced=*/true),
  };
  EXPECT_TRUE(HasRule(WalDisciplineChecker::Check(late_prepared, {}),
                      "prepared-before-vote"));
  // A no vote needs no PREPARED record.
  std::vector<TraceEvent> no_vote = {
      Send(1, 1, "VOTE", std::nullopt, "no"),
  };
  EXPECT_TRUE(WalDisciplineChecker::Check(no_vote, {}).ok());
}

TEST(WalDisciplineCheckerTest, FlagsEnforceWithoutForcedDecisionRecord) {
  // R3: a prepared PrN participant enforces commit without a forced COMMIT
  // record (PrN force-logs both outcomes).
  std::vector<TraceEvent> trace = {
      Append(1, 1, "PREPARED", /*forced=*/true),
      Send(1, 1, "VOTE", std::nullopt, "yes"),
      Enforce(1, 1, Outcome::kCommit),
  };
  std::map<SiteId, ProtocolKind> protocols = {{1, ProtocolKind::kPrN}};
  EXPECT_TRUE(HasRule(WalDisciplineChecker::Check(trace, protocols),
                      "log-before-enforce"));
  // The same trace is legal for a PrC participant: commit is its presumed
  // (never force-logged) outcome.
  std::map<SiteId, ProtocolKind> prc = {{1, ProtocolKind::kPrC}};
  EXPECT_TRUE(WalDisciplineChecker::Check(trace, prc).ok());
}

TEST(WalDisciplineCheckerTest, UnpreparedAbortIsExemptFromR3) {
  // A participant aborting before it ever prepared (vote-no unilateral
  // abort) needs no log record.
  std::vector<TraceEvent> trace = {
      Send(1, 1, "VOTE", std::nullopt, "no"),
      Enforce(1, 1, Outcome::kAbort),
  };
  std::map<SiteId, ProtocolKind> protocols = {{1, ProtocolKind::kPrN}};
  EXPECT_TRUE(WalDisciplineChecker::Check(trace, protocols).ok());
}

TEST(WalDisciplineCheckerTest, FlagsInitiationViolations) {
  // R4: INITIATION must be forced...
  std::vector<TraceEvent> unforced = {
      Append(0, 1, "INITIATION", /*forced=*/false),
  };
  EXPECT_TRUE(HasRule(WalDisciplineChecker::Check(unforced, {}),
                      "initiation-before-prepare"));
  // ...and must precede the first PREPARE.
  std::vector<TraceEvent> late = {
      Send(0, 1, "PREPARE"),
      Append(0, 1, "INITIATION", /*forced=*/true),
  };
  EXPECT_TRUE(HasRule(WalDisciplineChecker::Check(late, {}),
                      "initiation-before-prepare"));
  // Correct order passes.
  std::vector<TraceEvent> good = {
      Append(0, 1, "INITIATION", /*forced=*/true),
      Send(0, 1, "PREPARE"),
  };
  EXPECT_TRUE(WalDisciplineChecker::Check(good, {}).ok());
}

}  // namespace
}  // namespace prany
