#include "history/atomicity_checker.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

SigEvent Decide(TxnId txn, Outcome o) {
  return SigEvent{.type = SigEventType::kCoordDecide,
                  .site = 0,
                  .txn = txn,
                  .outcome = o};
}
SigEvent Enforce(TxnId txn, SiteId site, Outcome o) {
  return SigEvent{.type = SigEventType::kPartEnforce,
                  .site = site,
                  .txn = txn,
                  .outcome = o};
}

TEST(AtomicityCheckerTest, EmptyHistoryIsClean) {
  EventLog history;
  AtomicityReport report = AtomicityChecker::Check(history);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.txns_checked, 0u);
}

TEST(AtomicityCheckerTest, ConsistentCommitIsClean) {
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Enforce(1, 1, Outcome::kCommit));
  history.Record(Enforce(1, 2, Outcome::kCommit));
  EXPECT_TRUE(AtomicityChecker::Check(history).ok());
}

TEST(AtomicityCheckerTest, MixedEnforcementsAreAViolation) {
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Enforce(1, 1, Outcome::kCommit));
  history.Record(Enforce(1, 2, Outcome::kAbort));
  AtomicityReport report = AtomicityChecker::Check(history);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations[0].txn, 1u);
}

TEST(AtomicityCheckerTest, EnforcementAgainstDecisionIsAViolation) {
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Enforce(1, 1, Outcome::kAbort));
  history.Record(Enforce(1, 2, Outcome::kAbort));
  AtomicityReport report = AtomicityChecker::Check(history);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].description.find("decided commit"),
            std::string::npos);
}

TEST(AtomicityCheckerTest, ConflictingDecisionsAreAViolation) {
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Decide(1, Outcome::kAbort));
  EXPECT_FALSE(AtomicityChecker::Check(history).ok());
}

TEST(AtomicityCheckerTest, RepeatedIdenticalDecisionsAreFine) {
  // Recovery re-initiation records a second Decide with the same outcome.
  EventLog history;
  history.Record(Decide(1, Outcome::kAbort));
  history.Record(Decide(1, Outcome::kAbort));
  history.Record(Enforce(1, 1, Outcome::kAbort));
  EXPECT_TRUE(AtomicityChecker::Check(history).ok());
}

TEST(AtomicityCheckerTest, ReEnforcementSameOutcomeIsFine) {
  // Participant redo after recovery.
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Enforce(1, 1, Outcome::kCommit));
  history.Record(Enforce(1, 1, Outcome::kCommit));
  EXPECT_TRUE(AtomicityChecker::Check(history).ok());
}

TEST(AtomicityCheckerTest, SameSiteBothOutcomesIsAViolation) {
  EventLog history;
  history.Record(Enforce(1, 1, Outcome::kCommit));
  history.Record(Enforce(1, 1, Outcome::kAbort));
  AtomicityReport report = AtomicityChecker::Check(history);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations[0].description.find("site 1"),
            std::string::npos);
}

TEST(AtomicityCheckerTest, DecisionWithoutEnforcementsIsClean) {
  // A transaction aborted before any participant prepared.
  EventLog history;
  history.Record(Decide(1, Outcome::kAbort));
  EXPECT_TRUE(AtomicityChecker::Check(history).ok());
}

TEST(AtomicityCheckerTest, ViolationsAreScopedToTheirTxn) {
  EventLog history;
  history.Record(Decide(1, Outcome::kCommit));
  history.Record(Enforce(1, 1, Outcome::kCommit));
  history.Record(Decide(2, Outcome::kCommit));
  history.Record(Enforce(2, 1, Outcome::kCommit));
  history.Record(Enforce(2, 2, Outcome::kAbort));
  AtomicityReport report = AtomicityChecker::Check(history);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].txn, 2u);
  EXPECT_EQ(report.txns_checked, 2u);
}

TEST(AtomicityCheckerTest, ToStringSummarizes) {
  EventLog history;
  history.Record(Enforce(1, 1, Outcome::kCommit));
  history.Record(Enforce(1, 2, Outcome::kAbort));
  std::string s = AtomicityChecker::Check(history).ToString();
  EXPECT_NE(s.find("VIOLATED"), std::string::npos);
  EXPECT_NE(s.find("txn 1"), std::string::npos);
}

}  // namespace
}  // namespace prany
