#include "history/event_log.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

SigEvent Make(SigEventType type, TxnId txn, SiteId site = 0) {
  return SigEvent{.type = type, .site = site, .txn = txn};
}

TEST(EventLogTest, RecordAssignsMonotoneSequence) {
  EventLog log;
  const SigEvent& a = log.Record(Make(SigEventType::kTxnSubmitted, 1));
  uint64_t a_seq = a.seq;
  const SigEvent& b = log.Record(Make(SigEventType::kCoordDecide, 1));
  EXPECT_GT(b.seq, a_seq);
  EXPECT_EQ(log.events().size(), 2u);
}

TEST(EventLogTest, PrecedesIsSequenceOrder) {
  EventLog log;
  log.Record(Make(SigEventType::kTxnSubmitted, 1));
  log.Record(Make(SigEventType::kCoordDecide, 1));
  const SigEvent& a = log.events()[0];
  const SigEvent& b = log.events()[1];
  EXPECT_TRUE(EventLog::Precedes(a, b));
  EXPECT_FALSE(EventLog::Precedes(b, a));
}

TEST(EventLogTest, ForTxnFilters) {
  EventLog log;
  log.Record(Make(SigEventType::kTxnSubmitted, 1));
  log.Record(Make(SigEventType::kTxnSubmitted, 2));
  log.Record(Make(SigEventType::kCoordDecide, 1));
  auto events = log.ForTxn(1);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0]->type, SigEventType::kTxnSubmitted);
  EXPECT_EQ(events[1]->type, SigEventType::kCoordDecide);
  EXPECT_TRUE(log.ForTxn(99).empty());
}

TEST(EventLogTest, FirstWhere) {
  EventLog log;
  log.Record(Make(SigEventType::kTxnSubmitted, 1));
  log.Record(Make(SigEventType::kCoordDecide, 1));
  log.Record(Make(SigEventType::kCoordDecide, 2));
  const SigEvent* found = log.FirstWhere([](const SigEvent& e) {
    return e.type == SigEventType::kCoordDecide;
  });
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->txn, 1u);
  EXPECT_EQ(log.FirstWhere([](const SigEvent& e) {
    return e.type == SigEventType::kSiteCrash;
  }),
            nullptr);
}

TEST(EventLogTest, TxnsListsDistinctIds) {
  EventLog log;
  log.Record(Make(SigEventType::kTxnSubmitted, 3));
  log.Record(Make(SigEventType::kTxnSubmitted, 1));
  log.Record(Make(SigEventType::kCoordDecide, 3));
  log.Record(SigEvent{.type = SigEventType::kSiteCrash, .site = 0});
  EXPECT_EQ(log.Txns(), (std::vector<TxnId>{1, 3}));
}

TEST(EventLogTest, ClearResets) {
  EventLog log;
  log.Record(Make(SigEventType::kTxnSubmitted, 1));
  log.Clear();
  EXPECT_TRUE(log.events().empty());
  const SigEvent& e = log.Record(Make(SigEventType::kTxnSubmitted, 2));
  EXPECT_EQ(e.seq, 1u);
}

TEST(EventLogTest, ToStringRendersEvents) {
  EventLog log;
  SigEvent e = Make(SigEventType::kCoordRespond, 7, 3);
  e.outcome = Outcome::kCommit;
  e.peer = 5;
  e.by_presumption = true;
  log.Record(e);
  std::string s = log.ToString();
  EXPECT_NE(s.find("Respond"), std::string::npos);
  EXPECT_NE(s.find("txn=7"), std::string::npos);
  EXPECT_NE(s.find("site=3"), std::string::npos);
  EXPECT_NE(s.find("peer=5"), std::string::npos);
  EXPECT_NE(s.find("outcome=commit"), std::string::npos);
  EXPECT_NE(s.find("by_presumption"), std::string::npos);
}

TEST(EventLogTest, AllTypeNamesDistinct) {
  std::set<std::string> names;
  for (int i = 0; i <= static_cast<int>(SigEventType::kSiteRecover); ++i) {
    names.insert(ToString(static_cast<SigEventType>(i)));
  }
  EXPECT_EQ(names.size(), 10u);
}

}  // namespace
}  // namespace prany
