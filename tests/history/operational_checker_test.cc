#include "history/operational_checker.h"

#include <gtest/gtest.h>

namespace prany {
namespace {

SiteEndState CleanSite(SiteId id) {
  SiteEndState s;
  s.site = id;
  return s;
}

TEST(OperationalCheckerTest, CleanRunPasses) {
  EventLog history;
  history.Record(SigEvent{.type = SigEventType::kCoordDecide,
                          .site = 0,
                          .txn = 1,
                          .outcome = Outcome::kCommit});
  history.Record(SigEvent{.type = SigEventType::kPartEnforce,
                          .site = 1,
                          .txn = 1,
                          .outcome = Outcome::kCommit});
  OperationalReport report =
      OperationalChecker::Check(history, {CleanSite(0), CleanSite(1)});
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.atomicity.ok());
  EXPECT_TRUE(report.coordinators_forget);
  EXPECT_TRUE(report.participants_forget);
}

TEST(OperationalCheckerTest, Clause1FailsOnAtomicityViolation) {
  EventLog history;
  history.Record(SigEvent{.type = SigEventType::kPartEnforce,
                          .site = 1,
                          .txn = 1,
                          .outcome = Outcome::kCommit});
  history.Record(SigEvent{.type = SigEventType::kPartEnforce,
                          .site = 2,
                          .txn = 1,
                          .outcome = Outcome::kAbort});
  OperationalReport report =
      OperationalChecker::Check(history, {CleanSite(0)});
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.atomicity.ok());
  EXPECT_TRUE(report.coordinators_forget);  // clauses are independent
}

TEST(OperationalCheckerTest, Clause2FailsOnResidualTableEntries) {
  EventLog history;
  SiteEndState leaky = CleanSite(0);
  leaky.coord_table_size = 3;
  OperationalReport report = OperationalChecker::Check(history, {leaky});
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.coordinators_forget);
  EXPECT_TRUE(report.participants_forget);
  ASSERT_FALSE(report.problems.empty());
  EXPECT_NE(report.problems[0].find("protocol-table entries"),
            std::string::npos);
}

TEST(OperationalCheckerTest, Clause2FailsOnUnreleasableLog) {
  EventLog history;
  SiteEndState leaky = CleanSite(0);
  leaky.unreleased_txns = {1, 2};
  OperationalReport report = OperationalChecker::Check(history, {leaky});
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.coordinators_forget);
}

TEST(OperationalCheckerTest, Clause3FailsOnResidualParticipantEntries) {
  EventLog history;
  SiteEndState leaky = CleanSite(1);
  leaky.participant_entries = 1;
  OperationalReport report = OperationalChecker::Check(history, {leaky});
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.participants_forget);
  EXPECT_TRUE(report.coordinators_forget);
}

TEST(OperationalCheckerTest, ProblemsNameTheSite) {
  EventLog history;
  SiteEndState leaky = CleanSite(7);
  leaky.coord_table_size = 1;
  OperationalReport report = OperationalChecker::Check(history, {leaky});
  ASSERT_FALSE(report.problems.empty());
  EXPECT_NE(report.problems[0].find("site 7"), std::string::npos);
}

TEST(OperationalCheckerTest, ToStringListsAllClauses) {
  EventLog history;
  std::string s =
      OperationalChecker::Check(history, {CleanSite(0)}).ToString();
  EXPECT_NE(s.find("clause 1"), std::string::npos);
  EXPECT_NE(s.find("clause 2"), std::string::npos);
  EXPECT_NE(s.find("clause 3"), std::string::npos);
  EXPECT_NE(s.find("OK"), std::string::npos);
}

TEST(OperationalCheckerTest, MultipleSitesAggregated) {
  EventLog history;
  SiteEndState a = CleanSite(0);
  SiteEndState b = CleanSite(1);
  b.participant_entries = 2;
  SiteEndState c = CleanSite(2);
  c.coord_table_size = 1;
  OperationalReport report = OperationalChecker::Check(history, {a, b, c});
  EXPECT_FALSE(report.coordinators_forget);
  EXPECT_FALSE(report.participants_forget);
  EXPECT_EQ(report.problems.size(), 2u);
}

}  // namespace
}  // namespace prany
