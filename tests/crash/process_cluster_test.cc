// Multi-process cluster crash tests: real OS processes, real sockets,
// real SIGKILL. Each site runs in its own prany_site_server process over
// UDS; the kill test SIGKILLs one mid-load — no destructors, a genuinely
// torn WAL tail — and restarts it, driving FileStableLog recovery plus
// the paper's §4.2 procedure over live sockets while the survivors keep
// serving. This is the strongest crash model the repo exercises: the
// in-process controller (crash_restart_test.cc) simulates the teardown;
// here the kernel performs it.

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/process_cluster.h"
#include "history/event_log.h"

namespace prany {
namespace harness {
namespace {

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "prany_cluster_XXXXXX";
  char* dir = mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

ProcessClusterConfig MakeConfig(const std::string& dir,
                                const std::vector<ProtocolKind>& protocols) {
  ProcessClusterConfig config;
  config.log_dir = dir;
  for (size_t i = 0; i < protocols.size(); ++i) {
    ProcessSiteSpec spec;
    spec.id = static_cast<SiteId>(i);
    spec.protocol = protocols[i];
    spec.address = "uds:" + dir + "/site" + std::to_string(i) + ".sock";
    config.sites.push_back(std::move(spec));
  }
  return config;
}

void SleepMs(uint64_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

TEST(SigEventWireTest, RoundTrips) {
  SigEvent event;
  event.seq = 42;
  event.time = 123456789;
  event.type = SigEventType::kCoordRespond;
  event.site = 3;
  event.txn = (uint64_t{7} << 40) + 12;
  event.outcome = Outcome::kAbort;
  event.peer = 1;
  event.by_presumption = true;

  SigEvent parsed;
  ASSERT_TRUE(ParseSigEvent(SerializeSigEvent(event), &parsed));
  EXPECT_EQ(parsed.seq, event.seq);
  EXPECT_EQ(parsed.time, event.time);
  EXPECT_EQ(parsed.type, event.type);
  EXPECT_EQ(parsed.site, event.site);
  EXPECT_EQ(parsed.txn, event.txn);
  ASSERT_TRUE(parsed.outcome.has_value());
  EXPECT_EQ(*parsed.outcome, Outcome::kAbort);
  EXPECT_EQ(parsed.peer, event.peer);
  EXPECT_TRUE(parsed.by_presumption);

  event.outcome.reset();
  ASSERT_TRUE(ParseSigEvent(SerializeSigEvent(event), &parsed));
  EXPECT_FALSE(parsed.outcome.has_value());

  SigEvent reject;
  EXPECT_FALSE(ParseSigEvent("", &reject));
  EXPECT_FALSE(ParseSigEvent("1 2 99 0 5 -1 0 0", &reject));  // bad type
  EXPECT_FALSE(ParseSigEvent("1 2 1 0 5 7 0 0", &reject));    // bad outcome
}

TEST(ProcessClusterTest, MixedProtocolLoadAcrossThreeProcesses) {
  const std::string dir = MakeTempDir();
  ProcessClusterConfig config = MakeConfig(
      dir, {ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC});
  config.duration_us = 1'000'000;
  config.clients = 2;
  config.abort_fraction = 0.1;
  config.seed = 11;

  ProcessCluster cluster(config);
  Status launched = cluster.LaunchAll();
  ASSERT_TRUE(launched.ok()) << launched.ToString();
  SleepMs(1'300);
  cluster.SignalAll(SIGTERM);
  EXPECT_TRUE(cluster.WaitAll(30'000'000));

  ClusterLoadTotals totals = cluster.CollectTotals();
  EXPECT_GT(totals.submitted, 0u);
  EXPECT_GT(totals.committed, 0u);
  EXPECT_GT(totals.aborted, 0u);  // abort_fraction planned no-votes
  EXPECT_EQ(totals.timeouts, 0u);
  EXPECT_EQ(totals.submitted,
            totals.committed + totals.aborted + totals.timeouts +
                totals.dropped);

  // Every commit crossed process boundaries: each server reports socket
  // traffic and zero corrupt frames.
  for (const ProcessSiteSpec& site : config.sites) {
    std::map<std::string, std::string> result = cluster.ResultFor(site.id);
    ASSERT_FALSE(result.empty()) << "site " << site.id << " wrote no result";
    EXPECT_NE(result["net_messages_delivered"], "0") << "site " << site.id;
    EXPECT_EQ(result["net_frames_dropped_corrupt"], "0")
        << "site " << site.id;
  }

  EventLog merged;
  EXPECT_GT(cluster.MergeHistories(&merged), 0u);
  AtomicityReport atomicity = cluster.CheckAtomicity();
  EXPECT_TRUE(atomicity.ok()) << atomicity.ToString();
}

TEST(ProcessClusterTest, SigkillAndRestartRecoversOverSockets) {
  const std::string dir = MakeTempDir();
  ProcessClusterConfig config = MakeConfig(
      dir, {ProtocolKind::kPrC, ProtocolKind::kPrC, ProtocolKind::kPrC});
  config.duration_us = 3'000'000;
  config.clients = 2;
  config.abort_fraction = 0.1;
  config.await_timeout_us = 20'000'000;
  config.seed = 23;

  ProcessCluster cluster(config);
  Status launched = cluster.LaunchAll();
  ASSERT_TRUE(launched.ok()) << launched.ToString();

  // Let traffic flow so site 1's WAL holds forced PREPARED records and
  // coordinator decisions, then fail-stop it for real.
  SleepMs(800);
  cluster.KillSite(1);
  EXPECT_FALSE(cluster.Running(1));
  SleepMs(300);
  // The survivors kept serving the whole time; some of their
  // transactions are parked waiting on site 1. The restarted
  // incarnation replays its WAL, re-inquires its in-doubt transactions
  // over the socket (§4.2), and the parked work drains.
  Status restarted = cluster.RestartSite(1);
  ASSERT_TRUE(restarted.ok()) << restarted.ToString();
  SleepMs(1'700);
  cluster.SignalAll(SIGTERM);
  EXPECT_TRUE(cluster.WaitAll(60'000'000));

  ClusterLoadTotals totals = cluster.CollectTotals();
  EXPECT_GT(totals.committed, 0u);

  // The restarted incarnation found its predecessor's forced records.
  std::map<std::string, std::string> result = cluster.ResultFor(1);
  ASSERT_FALSE(result.empty()) << "restarted site wrote no result";
  EXPECT_EQ(result["incarnation"], "1");
  ASSERT_TRUE(result.count("wal_records_recovered"));
  EXPECT_NE(result["wal_records_recovered"], "0");

  // Atomicity holds across the merged partial histories. The SIGKILLed
  // incarnation's in-memory events are lost with it — recovery
  // re-records the durable decisions, so the merge loses evidence,
  // never gains contradictions.
  AtomicityReport atomicity = cluster.CheckAtomicity();
  EXPECT_TRUE(atomicity.ok()) << atomicity.ToString();
}

}  // namespace
}  // namespace harness
}  // namespace prany
