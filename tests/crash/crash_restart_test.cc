// Live crash-restart soak: a four-site federation serves closed-loop
// client traffic while one site at a time is killed and restarted — first
// at named protocol crash points (the paper's adversarial schedules,
// live), then at random instants (which tear the WAL tail mid-batch).
// Every cycle re-runs FileStableLog recovery and the §4.2 procedure over
// the live transport while the other sites keep serving.
//
// Each protocol's case is tuned so at least one post-restart in-doubt
// transaction must be resolved *by presumption*:
//  * PrN  — coordinator dies after sending PREPAREs, before logging
//           anything: restart finds no trace, inquiries get the hidden
//           presumed-abort.
//  * PrA  — participant dies on a (forgotten, never-acked) abort decision
//           before logging it: inquiry meets an empty protocol table.
//  * PrC  — participant dies on a commit decision (commits are lazy and
//           unacked under PrC, so the coordinator has already forgotten).
//  * PrAny— PrC participant under a PrAny coordinator: the coordinator
//           adopts the inquirer's presumption from the stable PCP (§4.2).

#include <chrono>
#include <cstdlib>
#include <deque>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "history/wal_discipline_checker.h"
#include "runtime/live_system.h"
#include "runtime/load_gen.h"

namespace prany {
namespace runtime {
namespace {

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "prany_crash_XXXXXX";
  char* dir = mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

constexpr int kSites = 4;
constexpr uint64_t kDowntimeUs = 30'000;
constexpr uint64_t kTargetCycles = 50;
constexpr uint64_t kMaxCycles = 90;
constexpr uint64_t kCycleTimeoutUs = 60'000'000;  // generous: ASan CI boxes
constexpr uint64_t kQuiesceUs = 30'000'000;

struct CrashCase {
  const char* name;
  ProtocolKind participant;
  ProtocolKind coordinator;
  /// Named point for the injector-driven half of the cycles.
  CrashPoint point;
  double abort_fraction;
};

/// True iff some inquiry was answered by presumption after a restart: a
/// RespondC with by_presumption whose responding site or inquiring peer
/// has an earlier recovery in the history.
bool SawPresumptionAfterRecovery(const EventLog& history) {
  const std::deque<SigEvent>& events = history.events();
  for (const SigEvent& e : events) {
    if (e.type != SigEventType::kCoordRespond || !e.by_presumption) continue;
    for (const SigEvent& r : events) {
      if (r.type != SigEventType::kSiteRecover || r.seq >= e.seq) continue;
      if (r.site == e.site || r.site == e.peer) return true;
    }
  }
  return false;
}

class CrashRestartTest : public ::testing::TestWithParam<CrashCase> {};

TEST_P(CrashRestartTest, SoakUnderLoadStaysAtomic) {
  const CrashCase& cc = GetParam();

  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  // Recovery-era timers dominate the cycle time; keep them snappy so 50+
  // cycles fit in a test, but far above real message latency.
  config.timing.vote_timeout = 2'000'000;
  config.timing.decision_resend_interval = 200'000;
  config.timing.inquiry_interval = 100'000;
  LiveSystem system(config);
  system.loop().trace().Enable();
  for (int i = 0; i < kSites; ++i) {
    system.AddSite(cc.participant, cc.coordinator);
  }
  system.EnableCrashInjection(/*seed=*/7);

  LoadGenConfig lg;
  lg.clients = 6;
  lg.duration_us = 600'000'000;  // ended by Stop() once the cycles are in
  lg.participants_per_txn = 2;
  lg.abort_fraction = cc.abort_fraction;
  // A third of the load is dual-role: the crash victim coordinates
  // transactions it also participates in, so crashes land between its
  // participant force and its coordinator decision force and recovery
  // must rebuild both roles from one log.
  lg.dual_role_fraction = 0.34;
  lg.await_timeout_us = 2'000'000;
  lg.seed = 42;
  LoadGen gen(&system, lg);
  LoadGenReport report;
  std::thread load([&]() { report = gen.Run(); });

  // Phase A: named-crash-point cycles, one rule at a time so cycles never
  // overlap on the target site. Site 1 serves both roles under this load,
  // so both coordinator- and participant-side points are reachable.
  const SiteId target = 1;
  uint64_t cycles = 0;
  for (int i = 0; i < 25; ++i) {
    system.InjectCrashAtPoint(target, cc.point, kDowntimeUs);
    ++cycles;
    ASSERT_TRUE(system.AwaitCrashCycles(cycles, kCycleTimeoutUs))
        << "crash point " << ToString(cc.point) << " never fired on site "
        << target << " (cycle " << cycles << ")";
  }

  // Phase B: random-instant kills across all sites. These land mid-batch
  // under load, so recovery sees genuinely torn tails; keep cycling until
  // one did (bounded — the odds per cycle are high). A kill only tears a
  // tail if it lands while some sync is in flight, so before each kill
  // wait for fresh WAL flush traffic: on an oversubscribed CI box the
  // load threads can starve between back-to-back kills, and killing an
  // idle WAL ninety times in a row never tears anything.
  auto wal_flushes = [&system]() {
    const auto counters = system.metrics().counters();
    const auto it = counters.find("wal.flushes");
    return it == counters.end() ? int64_t{0} : it->second;
  };
  SiteId next = 0;
  CrashStats stats = system.crash_stats();
  int64_t flushes_before = wal_flushes();
  while (stats.cycles < kTargetCycles ||
         (stats.torn_tail_cycles == 0 && stats.cycles < kMaxCycles)) {
    for (int spins = 0; spins < 2'000; ++spins) {
      if (wal_flushes() >= flushes_before + 8) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    system.CrashRestartSite(next, kDowntimeUs);
    next = static_cast<SiteId>((next + 1) % kSites);
    stats = system.crash_stats();
    flushes_before = wal_flushes();
  }

  gen.Stop();
  load.join();

  // Let the survivors of the last cycles resolve (inquiry rounds), then
  // shut down and judge the whole history.
  EXPECT_TRUE(system.Quiesce(kQuiesceUs));
  system.Stop();

  stats = system.crash_stats();
  EXPECT_GE(stats.cycles, kTargetCycles);
  EXPECT_GE(stats.torn_tail_cycles, 1u)
      << stats.cycles << " cycles without a torn tail";
  EXPECT_GT(stats.records_recovered_total, 0u);
  EXPECT_GT(report.submitted, 0u);
  EXPECT_GT(report.committed, 0u);
  EXPECT_GT(report.dual_role_submitted, 0u);

  EXPECT_TRUE(SawPresumptionAfterRecovery(system.history()))
      << "no post-restart inquiry was answered by presumption";

  AtomicityReport atomicity = system.CheckAtomicity();
  EXPECT_TRUE(atomicity.ok()) << atomicity.ToString();
  SafeStateReport safe = system.CheckSafeState();
  EXPECT_TRUE(safe.ok()) << safe.ToString();
  if (!safe.ok()) {
    // Full event dump of the first offender — the one-line verdict is
    // rarely enough to reconstruct a cross-crash interleaving.
    for (const SigEvent* e : system.history().ForTxn(safe.violations[0].txn)) {
      ADD_FAILURE() << e->ToString();
    }
    for (const TraceEvent& t : system.loop().trace().events()) {
      if (t.txn == safe.violations[0].txn) ADD_FAILURE() << t.ToString();
    }
  }

  std::map<SiteId, ProtocolKind> protocols;
  for (SiteId s = 0; s < kSites; ++s) {
    protocols[s] = system.site(s)->participant_protocol();
  }
  WalDisciplineReport wal =
      WalDisciplineChecker::Check(system.loop().trace().events(), protocols);
  EXPECT_TRUE(wal.ok()) << wal.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Presumptions, CrashRestartTest,
    ::testing::Values(
        CrashCase{"PrN", ProtocolKind::kPrN, ProtocolKind::kPrN,
                  CrashPoint::kCoordAfterPreparesSent, 0.2},
        CrashCase{"PrA", ProtocolKind::kPrA, ProtocolKind::kPrA,
                  CrashPoint::kPartOnDecisionReceived, 0.5},
        CrashCase{"PrC", ProtocolKind::kPrC, ProtocolKind::kPrC,
                  CrashPoint::kPartOnDecisionReceived, 0.2},
        CrashCase{"PrAny", ProtocolKind::kPrC, ProtocolKind::kPrAny,
                  CrashPoint::kPartOnDecisionReceived, 0.2}),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace runtime
}  // namespace prany
