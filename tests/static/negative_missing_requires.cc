// Negative-compile case: calling a PRANY_REQUIRES(mu) function without
// holding mu must be rejected by clang TSA with a "requires holding
// mutex" diagnostic. See tests/static/CMakeLists.txt.

#include "common/sync.h"

namespace {

class Table {
 public:
  void Insert() {
    InsertLocked();  // VIOLATION: callee requires mu_, caller holds nothing
  }

  void InsertSafely() {
    prany::MutexLock lock(mu_);
    InsertLocked();  // fine: lock held
  }

 private:
  void InsertLocked() PRANY_REQUIRES(mu_) { ++size_; }

  prany::Mutex mu_;
  int size_ PRANY_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Table t;
  t.Insert();
  return 0;
}
