// Negative-compile case: acquiring two mutexes against their declared
// PRANY_ACQUIRED_BEFORE edge must be rejected by clang TSA (beta lock
// ordering checks) with a "must be acquired before" diagnostic — the
// same mechanism that enforces the global engine -> queue -> wal-sync ->
// crash -> metrics hierarchy in src/common/sync.h. See
// tests/static/CMakeLists.txt.

#include "common/sync.h"

namespace {

class TwoLocks {
 public:
  void InOrder() {
    prany::MutexLock outer(outer_);
    prany::MutexLock inner(inner_);  // fine: follows the declared order
  }

  void Inverted() {
    prany::MutexLock inner(inner_);
    prany::MutexLock outer(outer_);  // VIOLATION: deadlock-shaped order
  }

 private:
  prany::Mutex outer_ PRANY_ACQUIRED_BEFORE(inner_);
  prany::Mutex inner_;
};

}  // namespace

int main() {
  TwoLocks t;
  t.InOrder();
  t.Inverted();
  return 0;
}
