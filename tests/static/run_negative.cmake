# Negative-compile driver: SOURCE must be rejected by clang's thread
# safety analysis, and rejected for the *intended* reason — the combined
# compiler output must contain PATTERN. A clean compile, or a failure
# whose diagnostics do not mention PATTERN (say, a syntax error or a
# missing include), fails the test.
#
# Invoked by ctest as:
#   cmake -DCLANGXX=... -DSOURCE=... -DINCLUDE_DIR=... -DPATTERN=...
#         -P run_negative.cmake

foreach(var CLANGXX SOURCE INCLUDE_DIR PATTERN)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_negative.cmake: missing -D${var}=...")
  endif()
endforeach()

execute_process(
  COMMAND "${CLANGXX}" -std=c++20 -fsyntax-only
          "-I${INCLUDE_DIR}"
          -Wthread-safety -Wthread-safety-beta
          -Werror=thread-safety -Werror=thread-safety-beta
          "${SOURCE}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
set(diagnostics "${out}${err}")

if(rc EQUAL 0)
  message(FATAL_ERROR
    "${SOURCE} compiled clean, but it violates the locking discipline "
    "and must be rejected by -Wthread-safety")
endif()

string(FIND "${diagnostics}" "${PATTERN}" found)
if(found EQUAL -1)
  message(FATAL_ERROR
    "${SOURCE} failed to compile, but not for the expected reason.\n"
    "Expected the diagnostics to contain: ${PATTERN}\n"
    "Actual diagnostics:\n${diagnostics}")
endif()

message(STATUS "rejected as intended (\"${PATTERN}\"): ${SOURCE}")
