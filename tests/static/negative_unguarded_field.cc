// Negative-compile case: accessing a PRANY_GUARDED_BY field without
// holding its mutex must be rejected by clang TSA with a "requires
// holding mutex" diagnostic. See tests/static/CMakeLists.txt.

#include "common/sync.h"

namespace {

class Counter {
 public:
  void Add(int delta) {
    prany::MutexLock lock(mu_);
    value_ += delta;  // fine: lock held
  }

  int Get() const {
    return value_;  // VIOLATION: guarded read with no lock held
  }

 private:
  mutable prany::Mutex mu_;
  int value_ PRANY_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Add(1);
  return c.Get();
}
