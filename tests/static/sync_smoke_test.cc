// Positive smoke tests for the annotated sync primitives (common/sync.h):
// the wrappers must behave exactly like the std primitives they wrap, on
// every compiler — including gcc, where the TSA annotations expand to
// nothing. The negative-compile cases next to this file prove the
// analysis side; this file proves the runtime side.

#include "common/sync.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace prany {
namespace {

TEST(SyncSmokeTest, MutexLockExcludesConcurrentCriticalSections) {
  Mutex mu;
  int counter = 0;  // protected by mu (locals cannot be GUARDED_BY)
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  MutexLock lock(mu);
  EXPECT_EQ(counter, kThreads * kIncrementsPerThread);
}

TEST(SyncSmokeTest, TryLockFailsWhileHeldAndSucceedsAfter) {
  Mutex mu;
  mu.Lock();
  std::thread other([&]() {
    EXPECT_FALSE(mu.TryLock());
  });
  other.join();
  mu.Unlock();
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(SyncSmokeTest, MidScopeUnlockReleasesTheMutex) {
  Mutex mu;
  MutexLock lock(mu);
  lock.Unlock();
  // Another thread can take the mutex while our scoped lock is dropped.
  std::thread other([&]() {
    MutexLock inner(mu);
  });
  other.join();
  lock.Lock();  // destructor needs the lock held again
}

TEST(SyncSmokeTest, CondVarWaitWakesOnPredicate) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // protected by mu
  int observed = -1;

  std::thread waiter([&]() {
    MutexLock lock(mu);
    while (!ready) cv.Wait(mu);
    observed = 42;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
  EXPECT_EQ(observed, 42);
}

TEST(SyncSmokeTest, WaitForTimesOutWhenNeverNotified) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_TRUE(cv.WaitFor(mu, std::chrono::microseconds(1000)));
}

TEST(SyncSmokeTest, WaitUntilReturnsEarlyWhenNotified) {
  Mutex mu;
  CondVar cv;
  bool ready = false;  // protected by mu
  bool timed_out = true;

  std::thread waiter([&]() {
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    MutexLock lock(mu);
    while (!ready) {
      if (cv.WaitUntil(mu, deadline)) break;
    }
    timed_out = !ready;
  });
  {
    MutexLock lock(mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
  EXPECT_FALSE(timed_out);
}

TEST(SyncSmokeTest, LockOrderRankTokensExist) {
  // The rank tokens are declarative (never locked); all this asserts is
  // that the chain's definitions link from a test binary.
  const lock_order::Rank* ranks[] = {
      &lock_order::kEngineRank, &lock_order::kQueueRank,
      &lock_order::kWalSyncRank, &lock_order::kCrashRank,
      &lock_order::kMetricsRank};
  for (const lock_order::Rank* r : ranks) EXPECT_NE(r, nullptr);
}

}  // namespace
}  // namespace prany
