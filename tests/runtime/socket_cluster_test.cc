// Socket-transport cluster tests, single process: several LiveSystems —
// each hosting one site, exactly as the multi-process harness runs them —
// wired together over real Unix-domain (and TCP) sockets. Everything a
// site exchanges here crosses a genuine kernel socket: PREPAREs, votes,
// decisions, acks, §4.2 inquiries, and the planned-vote control frames.

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "history/atomicity_checker.h"
#include "runtime/live_system.h"
#include "runtime/load_gen.h"

namespace prany {
namespace runtime {
namespace {

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "prany_sock_XXXXXX";
  char* dir = mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

/// One "process" of the cluster: a LiveSystem hosting exactly one site.
struct Node {
  SiteId id;
  std::unique_ptr<LiveSystem> system;
};

/// Builds an n-site cluster over the given per-site addresses. Site i
/// runs `protocols[i]` as participant and coordinator kind.
std::vector<Node> BuildCluster(const std::string& log_dir,
                               const std::vector<std::string>& addresses,
                               const std::vector<ProtocolKind>& protocols) {
  std::vector<Node> nodes;
  for (size_t i = 0; i < addresses.size(); ++i) {
    LiveSystemConfig config;
    config.log_dir = log_dir;
    config.listen_address = addresses[i];
    // Socket dial backoff plus sanitizer slowdown can push a healthy
    // vote past the sim-scaled 50ms default and abort the transaction;
    // these tests measure correctness over sockets, not the timeout
    // path, so use wall-clock-realistic protocol timers.
    config.timing.vote_timeout = 10'000'000;
    config.timing.decision_resend_interval = 2'000'000;
    config.timing.inquiry_interval = 2'000'000;
    config.txn_id_base = static_cast<TxnId>(i + 1) << 40;
    for (size_t j = 0; j < addresses.size(); ++j) {
      if (j == i) continue;
      config.remote_sites.push_back(LiveSystemConfig::RemoteSite{
          static_cast<SiteId>(j), protocols[j], addresses[j]});
    }
    Node node;
    node.id = static_cast<SiteId>(i);
    node.system = std::make_unique<LiveSystem>(std::move(config));
    CoordinatorSpec spec;
    spec.kind = protocols[i];
    node.system->AddSiteWithId(node.id, protocols[i], spec);
    nodes.push_back(std::move(node));
  }
  return nodes;
}

/// Every node's local queues and outbound links idle. A message can be
/// in flight between two nodes when a single node's check runs, so the
/// whole cluster must be observed idle in one sweep, twice in a row.
bool QuiesceCluster(std::vector<Node>& nodes) {
  for (int stable = 0; stable < 2;) {
    bool idle = true;
    for (Node& node : nodes) {
      idle = node.system->Quiesce(10'000'000) && idle;
    }
    if (!idle) return false;
    ++stable;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return true;
}

/// The checkers' view of a multi-process run: the per-node partial
/// histories concatenated. The atomicity criterion is order-insensitive
/// across sites (it compares enforced outcomes against decisions), so
/// re-sequencing events per node is sound.
AtomicityReport CheckClusterAtomicity(std::vector<Node>& nodes) {
  EventLog merged;
  for (Node& node : nodes) {
    for (const SigEvent& event : node.system->history().events()) {
      merged.Record(event);
    }
  }
  return AtomicityChecker::Check(merged);
}

TEST(SocketClusterTest, MixedProtocolTransactionsOverUds) {
  const std::string dir = MakeTempDir();
  const std::vector<std::string> addresses = {
      "uds:" + dir + "/s0.sock",
      "uds:" + dir + "/s1.sock",
      "uds:" + dir + "/s2.sock",
  };
  const std::vector<ProtocolKind> protocols = {
      ProtocolKind::kPrN, ProtocolKind::kPrA, ProtocolKind::kPrC};
  std::vector<Node> nodes = BuildCluster(dir, addresses, protocols);

  // Every node coordinates transactions whose participants are the two
  // *remote* sites; every fourth transaction plans a remote no-vote
  // (exercising the control-frame setup path).
  struct Pending {
    size_t node;
    TxnId txn;
    Outcome expected;
  };
  std::vector<Pending> pending;
  for (size_t n = 0; n < nodes.size(); ++n) {
    for (int k = 0; k < 20; ++k) {
      const SiteId p1 = static_cast<SiteId>((n + 1) % 3);
      const SiteId p2 = static_cast<SiteId>((n + 2) % 3);
      std::map<SiteId, Vote> votes;
      Outcome expected = Outcome::kCommit;
      if (k % 4 == 3) {
        votes[p1] = Vote::kNo;
        expected = Outcome::kAbort;
      }
      TxnId txn = nodes[n].system->Submit(static_cast<SiteId>(n), {p1, p2},
                                          votes);
      pending.push_back(Pending{n, txn, expected});
    }
  }
  for (const Pending& p : pending) {
    std::optional<Outcome> outcome =
        nodes[p.node].system->Await(p.txn, 20'000'000);
    ASSERT_TRUE(outcome.has_value()) << "txn " << p.txn << " undecided";
    EXPECT_EQ(*outcome, p.expected) << "txn " << p.txn;
  }

  ASSERT_TRUE(QuiesceCluster(nodes));
  AtomicityReport atomicity = CheckClusterAtomicity(nodes);
  EXPECT_TRUE(atomicity.ok()) << atomicity.ToString();

  // The traffic really crossed sockets: every node both dialed out and
  // was dialed into, and delivered remote messages.
  for (Node& node : nodes) {
    SocketTransportStats stats = node.system->socket_transport()->stats();
    EXPECT_GT(stats.connects_completed, 0u);
    EXPECT_GT(stats.accepts, 0u);
    EXPECT_GT(stats.messages_delivered, 0u);
    EXPECT_EQ(stats.frames_dropped_corrupt, 0u);
    node.system->Stop();
  }
}

TEST(SocketClusterTest, ConcurrentLoadOverUds) {
  const std::string dir = MakeTempDir();
  const std::vector<std::string> addresses = {
      "uds:" + dir + "/s0.sock",
      "uds:" + dir + "/s1.sock",
      "uds:" + dir + "/s2.sock",
  };
  const std::vector<ProtocolKind> protocols(3, ProtocolKind::kPrC);
  std::vector<Node> nodes = BuildCluster(dir, addresses, protocols);

  // One closed-loop generator per node, coordinating locally with
  // participants drawn from the whole (mostly remote) topology.
  std::vector<LoadGenReport> reports(nodes.size());
  std::vector<std::thread> loads;
  for (size_t n = 0; n < nodes.size(); ++n) {
    loads.emplace_back([&, n]() {
      LoadGenConfig gen_config;
      gen_config.clients = 2;
      gen_config.duration_us = 300'000;
      gen_config.participants_per_txn = 2;
      gen_config.abort_fraction = 0.2;
      gen_config.seed = 17 + n;
      gen_config.sites = {0, 1, 2};
      gen_config.coordinators = {static_cast<SiteId>(n)};
      LoadGen gen(nodes[n].system.get(), gen_config);
      reports[n] = gen.Run();
    });
  }
  for (std::thread& t : loads) t.join();

  uint64_t committed = 0;
  for (size_t n = 0; n < nodes.size(); ++n) {
    EXPECT_GT(reports[n].committed, 0u) << "node " << n;
    EXPECT_EQ(reports[n].timeouts, 0u) << "node " << n;
    EXPECT_EQ(reports[n].dropped, 0u) << "node " << n;
    committed += reports[n].committed;
  }
  EXPECT_GT(committed, 0u);

  ASSERT_TRUE(QuiesceCluster(nodes));
  AtomicityReport atomicity = CheckClusterAtomicity(nodes);
  EXPECT_TRUE(atomicity.ok()) << atomicity.ToString();
  for (Node& node : nodes) node.system->Stop();
}

TEST(SocketClusterTest, CrashRestartRecoversOverTheSocket) {
  const std::string dir = MakeTempDir();
  const std::vector<std::string> addresses = {
      "uds:" + dir + "/s0.sock",
      "uds:" + dir + "/s1.sock",
      "uds:" + dir + "/s2.sock",
  };
  const std::vector<ProtocolKind> protocols(3, ProtocolKind::kPrC);
  std::vector<Node> nodes = BuildCluster(dir, addresses, protocols);

  auto submit_batch = [&](int count) {
    std::vector<TxnId> txns;
    for (int k = 0; k < count; ++k) {
      txns.push_back(nodes[0].system->Submit(0, {1, 2}, {}));
    }
    for (TxnId txn : txns) {
      std::optional<Outcome> outcome =
          nodes[0].system->Await(txn, 20'000'000);
      ASSERT_TRUE(outcome.has_value()) << "txn " << txn << " undecided";
    }
  };

  submit_batch(30);
  // Fail-stop site 1 in its own process; while it is down traffic to it
  // drops at delivery. Restart runs WAL recovery and the §4.2 procedure
  // — its decision re-requests and inquiry replies travel the sockets.
  nodes[1].system->CrashRestartSite(1, 100'000);
  submit_batch(30);

  ASSERT_TRUE(QuiesceCluster(nodes));
  AtomicityReport atomicity = CheckClusterAtomicity(nodes);
  EXPECT_TRUE(atomicity.ok()) << atomicity.ToString();
  for (Node& node : nodes) node.system->Stop();
}

TEST(SocketClusterTest, TwoSitesOverTcpLoopback) {
  const std::string dir = MakeTempDir();
  // Fixed ports spread by pid; SO_REUSEADDR covers TIME_WAIT reuse.
  const int base_port = 21000 + static_cast<int>(::getpid() % 20000);
  const std::vector<std::string> addresses = {
      "tcp:127.0.0.1:" + std::to_string(base_port),
      "tcp:127.0.0.1:" + std::to_string(base_port + 1),
  };
  const std::vector<ProtocolKind> protocols(2, ProtocolKind::kPrA);
  std::vector<Node> nodes = BuildCluster(dir, addresses, protocols);

  std::vector<TxnId> txns;
  for (int k = 0; k < 25; ++k) {
    std::map<SiteId, Vote> votes;
    if (k % 5 == 4) votes[1] = Vote::kNo;
    txns.push_back(nodes[0].system->Submit(0, {1}, votes));
  }
  for (TxnId txn : txns) {
    std::optional<Outcome> outcome = nodes[0].system->Await(txn, 20'000'000);
    ASSERT_TRUE(outcome.has_value()) << "txn " << txn << " undecided";
  }

  ASSERT_TRUE(QuiesceCluster(nodes));
  AtomicityReport atomicity = CheckClusterAtomicity(nodes);
  EXPECT_TRUE(atomicity.ok()) << atomicity.ToString();
  for (Node& node : nodes) {
    SocketTransportStats stats = node.system->socket_transport()->stats();
    EXPECT_EQ(stats.frames_dropped_corrupt, 0u);
    node.system->Stop();
  }
}

}  // namespace
}  // namespace runtime
}  // namespace prany
