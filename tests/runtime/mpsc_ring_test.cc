#include "runtime/mpsc_ring.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/live_loop.h"
#include "runtime/live_transport.h"

namespace prany {
namespace runtime {
namespace {

TEST(BoundedMpmcRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(BoundedMpmcRing<int>(1).capacity(), 2u);
  EXPECT_EQ(BoundedMpmcRing<int>(2).capacity(), 2u);
  EXPECT_EQ(BoundedMpmcRing<int>(3).capacity(), 4u);
  EXPECT_EQ(BoundedMpmcRing<int>(1000).capacity(), 1024u);
}

TEST(BoundedMpmcRingTest, FifoSingleThread) {
  BoundedMpmcRing<int> ring(8);
  EXPECT_TRUE(ring.Empty());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.TryPush(int{i}));
  EXPECT_FALSE(ring.TryPush(99));  // full
  EXPECT_FALSE(ring.Empty());
  for (int i = 0; i < 8; ++i) {
    int v = -1;
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
  }
  int v = -1;
  EXPECT_FALSE(ring.TryPop(&v));  // empty
  EXPECT_TRUE(ring.Empty());
}

TEST(BoundedMpmcRingTest, WrapsAroundManyLaps) {
  // Tiny ring: 10k transfers force thousands of laps, exercising the
  // per-slot sequence arithmetic across wraparound.
  BoundedMpmcRing<uint64_t> ring(4);
  uint64_t next_in = 0, next_out = 0;
  while (next_out < 10'000) {
    while (next_in < 10'000 && ring.TryPush(uint64_t{next_in})) ++next_in;
    uint64_t v = 0;
    while (ring.TryPop(&v)) {
      ASSERT_EQ(v, next_out);
      ++next_out;
    }
  }
  EXPECT_TRUE(ring.Empty());
}

TEST(BoundedMpmcRingTest, MultiProducerSingleConsumerKeepsPerProducerFifo) {
  // The transport's ordering contract: each producer's pushes are popped
  // in that producer's program order. Encode (producer, seq) in the value
  // and assert every producer's stream arrives strictly ascending. The
  // small capacity forces constant full/empty boundary crossings.
  constexpr uint64_t kProducers = 4;
  constexpr uint64_t kPerProducer = 20'000;
  BoundedMpmcRing<uint64_t> ring(64);

  std::vector<std::thread> producers;
  for (uint64_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&ring, p]() {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        while (!ring.TryPush((p << 32) | i)) std::this_thread::yield();
      }
    });
  }

  std::vector<uint64_t> next_seq(kProducers, 0);
  uint64_t popped = 0;
  while (popped < kProducers * kPerProducer) {
    uint64_t v = 0;
    if (!ring.TryPop(&v)) {
      std::this_thread::yield();
      continue;
    }
    uint64_t p = v >> 32;
    uint64_t seq = v & 0xffffffffu;
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(seq, next_seq[p]) << "producer " << p << " reordered";
    ++next_seq[p];
    ++popped;
  }
  for (std::thread& t : producers) t.join();
  EXPECT_TRUE(ring.Empty());
}

TEST(WireBufferPoolTest, RecyclesCapacityAndCountsHits) {
  WireBufferPool pool(8);
  std::vector<uint8_t> buf = pool.Acquire();
  EXPECT_EQ(pool.misses(), 1u);  // cold pool
  buf.assign(256, 0xab);
  pool.Release(std::move(buf));

  std::vector<uint8_t> again = pool.Acquire();
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_TRUE(again.empty());          // cleared on release
  EXPECT_GE(again.capacity(), 256u);   // but capacity survived

  // A buffer that never allocated is not worth pooling.
  pool.Release(std::vector<uint8_t>());
  std::vector<uint8_t> empty = pool.Acquire();
  EXPECT_EQ(pool.misses(), 2u);
}

/// Endpoint that blocks every delivery on a gate, so the inbox ring can be
/// driven to full while a delivery is in flight.
class GatedEndpoint : public NetworkEndpoint {
 public:
  void OnMessage(const Message& /*msg*/) override {
    std::unique_lock<std::mutex> lock(mu_);
    ++delivered_;
    cv_.wait(lock, [&] { return open_; });
  }
  bool IsUp() const override { return true; }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  int delivered() {
    std::lock_guard<std::mutex> lock(mu_);
    return delivered_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  int delivered_ = 0;
};

TEST(LiveTransportRingTest, StopWhileInboxFullReleasesParkedSenders) {
  // Fill site 0's inbox past its ring capacity while the endpoint blocks
  // the in-flight delivery, so senders end up parked on the full ring.
  // Stop() must release them (dropping their frames) without deadlock,
  // even though the delivery thread is still stuck inside OnMessage until
  // the gate opens.
  LiveEventLoop loop;
  LiveTransport transport(&loop, nullptr);
  GatedEndpoint sink;
  transport.RegisterEndpoint(0, &sink);
  transport.RegisterEndpoint(1, &sink);

  constexpr int kSenders = 4;
  constexpr int kPerSender = 600;  // 2400 total >> ring capacity
  std::atomic<int> sends_done{0};
  std::vector<std::thread> senders;
  for (int s = 0; s < kSenders; ++s) {
    senders.emplace_back([&transport, &sends_done, s]() {
      for (int i = 0; i < kPerSender; ++i) {
        transport.Send(Message::Prepare(
            static_cast<TxnId>(s * kPerSender + i + 1), /*from=*/1,
            /*to=*/0));
      }
      sends_done.fetch_add(1);
    });
  }
  // Let the flood hit the full-ring backpressure path. The first delivery
  // is gated, so at most a handful of frames can drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_LT(sends_done.load(), kSenders);  // someone is parked or looping

  std::thread stopper([&transport]() { transport.Stop(); });
  // Stop() joins the inbox thread, which may be stuck in the gated
  // delivery — open the gate after Stop() has begun so the test covers
  // exactly the stop-while-full window.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  sink.Open();

  for (std::thread& t : senders) t.join();
  stopper.join();

  LiveTransportStats stats = transport.stats();
  EXPECT_EQ(stats.messages_sent, uint64_t{kSenders} * kPerSender);
  // Undelivered frames are dropped on stop; whatever was delivered arrived
  // through the normal serial-delivery path.
  EXPECT_LE(stats.messages_delivered, stats.messages_sent);
  EXPECT_EQ(static_cast<uint64_t>(sink.delivered()),
            stats.messages_delivered);
}

}  // namespace
}  // namespace runtime
}  // namespace prany
