#include "runtime/live_transport.h"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/live_loop.h"

namespace prany {
namespace runtime {
namespace {

/// Collects delivered messages; optionally plays dead.
class TestEndpoint : public NetworkEndpoint {
 public:
  void OnMessage(const Message& msg) override {
    std::lock_guard<std::mutex> lock(mu_);
    received_.push_back(msg);
    cv_.notify_all();
  }
  bool IsUp() const override { return up_; }

  bool WaitForCount(size_t n, std::chrono::seconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout,
                        [&] { return received_.size() >= n; });
  }
  std::vector<Message> received() {
    std::lock_guard<std::mutex> lock(mu_);
    return received_;
  }
  void set_up(bool up) { up_ = up; }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Message> received_;
  bool up_ = true;
};

TEST(LiveTransportTest, DeliversToRegisteredEndpoint) {
  LiveEventLoop loop;
  LiveTransport transport(&loop, nullptr);
  TestEndpoint a, b;
  transport.RegisterEndpoint(0, &a);
  transport.RegisterEndpoint(1, &b);

  transport.Send(Message::Prepare(42, /*from=*/0, /*to=*/1));
  ASSERT_TRUE(b.WaitForCount(1, std::chrono::seconds(5)));
  std::vector<Message> got = b.received();
  EXPECT_EQ(got[0].type, MessageType::kPrepare);
  EXPECT_EQ(got[0].txn, 42u);
  EXPECT_EQ(got[0].from, 0u);
  EXPECT_TRUE(a.received().empty());
  transport.Stop();
  LiveTransportStats stats = transport.stats();
  EXPECT_EQ(stats.messages_sent, 1u);
  EXPECT_EQ(stats.messages_delivered, 1u);
  EXPECT_GT(stats.bytes_sent, 0u);
}

TEST(LiveTransportTest, PreservesPerLinkFifoOrder) {
  LiveEventLoop loop;
  LiveTransport transport(&loop, nullptr);
  TestEndpoint sink;
  TestEndpoint source;
  transport.RegisterEndpoint(0, &source);
  transport.RegisterEndpoint(1, &sink);

  constexpr size_t kCount = 200;
  for (size_t i = 0; i < kCount; ++i) {
    transport.Send(Message::Prepare(static_cast<TxnId>(i + 1), 0, 1));
  }
  ASSERT_TRUE(sink.WaitForCount(kCount, std::chrono::seconds(10)));
  std::vector<Message> got = sink.received();
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(got[i].txn, static_cast<TxnId>(i + 1));
  }
  transport.Stop();
}

TEST(LiveTransportTest, ConcurrentSendersAllDeliver) {
  LiveEventLoop loop;
  LiveTransport transport(&loop, nullptr);
  TestEndpoint sink;
  TestEndpoint s1, s2;
  transport.RegisterEndpoint(0, &sink);
  transport.RegisterEndpoint(1, &s1);
  transport.RegisterEndpoint(2, &s2);

  constexpr size_t kPerSender = 100;
  std::vector<std::thread> senders;
  for (SiteId from : {SiteId{1}, SiteId{2}}) {
    senders.emplace_back([&transport, from]() {
      for (size_t i = 0; i < kPerSender; ++i) {
        transport.Send(Message::Prepare(static_cast<TxnId>(i + 1), from, 0));
      }
    });
  }
  for (std::thread& t : senders) t.join();
  ASSERT_TRUE(sink.WaitForCount(2 * kPerSender, std::chrono::seconds(10)));
  EXPECT_TRUE(transport.Idle());
  transport.Stop();
  EXPECT_EQ(transport.stats().messages_delivered, 2 * kPerSender);
}

TEST(LiveTransportTest, DownEndpointLosesMessages) {
  LiveEventLoop loop;
  LiveTransport transport(&loop, nullptr);
  TestEndpoint a, b;
  b.set_up(false);
  transport.RegisterEndpoint(0, &a);
  transport.RegisterEndpoint(1, &b);

  transport.Send(Message::Prepare(1, 0, 1));
  // Loss is silent at the sender; wait for the counter instead.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (transport.stats().messages_lost_down == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(transport.stats().messages_lost_down, 1u);
  EXPECT_EQ(transport.stats().messages_delivered, 0u);
  EXPECT_TRUE(b.received().empty());
  transport.Stop();
}

TEST(LiveTransportTest, SendAfterStopIsDropped) {
  LiveEventLoop loop;
  LiveTransport transport(&loop, nullptr);
  TestEndpoint a, b;
  transport.RegisterEndpoint(0, &a);
  transport.RegisterEndpoint(1, &b);
  transport.Stop();
  transport.Send(Message::Prepare(1, 0, 1));  // must not crash or deliver
  EXPECT_EQ(transport.stats().messages_delivered, 0u);
}

}  // namespace
}  // namespace runtime
}  // namespace prany
