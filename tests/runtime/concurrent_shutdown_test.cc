// Regression tests for shutdown races surfaced by the thread-safety
// annotation conversion (common/sync.h):
//
//   * LiveSystem::Stop() used a plain check-then-set stopped_ flag, so an
//     explicit Stop() racing the destructor (or two owners racing) could
//     both enter the teardown and double-join threads / double-close
//     WALs. Stop() now claims shutdown with an atomic exchange.
//   * TraceLog::Clear() mutated the event vector with no lock, racing
//     concurrent Emit()s.
//
// Both tests carry the "runtime" label via this directory, so CI also
// runs them under ThreadSanitizer, which is what detects the original
// defects as data races.

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace.h"
#include "runtime/live_system.h"

namespace prany {
namespace runtime {
namespace {

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "prany_shutdown_XXXXXX";
  char* dir = mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

constexpr uint64_t kAwaitUs = 20'000'000;  // generous: CI boxes are slow

TEST(ConcurrentShutdownTest, RacingStopsRunTeardownOnce) {
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) system.AddSite(ProtocolKind::kPrC);

  TxnId txn = system.Submit(0, {1, 2});
  std::optional<Outcome> outcome = system.Await(txn, kAwaitUs);
  ASSERT_TRUE(outcome.has_value());

  // Many threads race Stop(); exactly one may run the teardown. The
  // pre-fix flag made this a check-then-set race (double join / double
  // WAL close aborts the process; TSan flags the unsynchronized bool).
  constexpr int kStoppers = 8;
  std::vector<std::thread> stoppers;
  stoppers.reserve(kStoppers);
  for (int i = 0; i < kStoppers; ++i) {
    stoppers.emplace_back([&]() { system.Stop(); });
  }
  for (std::thread& t : stoppers) t.join();

  // Post-conditions of a single clean teardown: history intact, checks
  // pass, and a further Stop() (the destructor's) is a no-op.
  EXPECT_TRUE(system.CheckAtomicity().ok());
  system.Stop();
}

TEST(ConcurrentShutdownTest, TraceClearRacingEmitKeepsEventsConsistent) {
  TraceLog trace;
  trace.Enable(/*echo_to_stderr=*/false);

  // Pre-fix, Clear() mutated the vector with no lock while emitters were
  // pushing — a heap-corrupting race TSan reports immediately.
  constexpr int kEmitters = 4;
  constexpr int kEventsPerEmitter = 2000;
  std::vector<std::thread> emitters;
  emitters.reserve(kEmitters);
  for (int e = 0; e < kEmitters; ++e) {
    emitters.emplace_back([&trace]() {
      for (int i = 0; i < kEventsPerEmitter; ++i) {
        trace.Emit(static_cast<SimTime>(i), "racing emit");
      }
    });
  }
  std::thread clearer([&trace]() {
    for (int i = 0; i < 200; ++i) trace.Clear();
  });
  for (std::thread& t : emitters) t.join();
  clearer.join();

  // Quiescent now; whatever survived the clears must be well-formed.
  trace.Disable();
  for (const TraceEvent& event : trace.events()) {
    EXPECT_EQ(event.kind, TraceEventKind::kNote);
    EXPECT_EQ(event.detail, "racing emit");
  }
}

}  // namespace
}  // namespace runtime
}  // namespace prany
