#include "wal/file_stable_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace prany {
namespace {

/// Fresh directory for one test's WAL files.
std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "prany_wal_XXXXXX";
  char* dir = mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

TEST(FileStableLogTest, ForcedAppendsSurviveReopen) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/site.wal";
  {
    FileStableLog log(path);
    ASSERT_TRUE(log.Open().ok());
    log.Append(LogRecord::Prepared(7, 0), /*force=*/true);
    log.Append(LogRecord::Commit(7), /*force=*/true);
    log.Close();
  }
  FileStableLog reopened(path);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.recovery_info().records_recovered, 2u);
  EXPECT_FALSE(reopened.recovery_info().tail_truncated);
  std::vector<LogRecord> records = reopened.StableRecords();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].type, LogRecordType::kPrepared);
  EXPECT_EQ(records[1].type, LogRecordType::kCommit);
  EXPECT_EQ(records[1].txn, 7u);
}

TEST(FileStableLogTest, LsnsContinueAfterReopen) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/site.wal";
  uint64_t last_lsn = 0;
  {
    FileStableLog log(path);
    ASSERT_TRUE(log.Open().ok());
    log.Append(LogRecord::Prepared(1, 0), true);
    last_lsn = log.Append(LogRecord::Commit(1), true);
  }
  FileStableLog reopened(path);
  ASSERT_TRUE(reopened.Open().ok());
  uint64_t next = reopened.Append(LogRecord::End(1), true);
  EXPECT_GT(next, last_lsn);
  EXPECT_EQ(reopened.StableSize(), 3u);
}

TEST(FileStableLogTest, ForcedFlushCoversEarlierNonForcedRecords) {
  // Same group-flush semantics as the in-memory log: a forced append
  // makes everything queued before it durable too.
  std::string dir = MakeTempDir();
  std::string path = dir + "/site.wal";
  {
    FileStableLog log(path);
    ASSERT_TRUE(log.Open().ok());
    log.Append(LogRecord::End(1), /*force=*/false);
    log.Append(LogRecord::Commit(2), /*force=*/true);
    EXPECT_EQ(log.StableSize(), 2u);
    log.Close();
  }
  FileStableLog reopened(path);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.recovery_info().records_recovered, 2u);
}

TEST(FileStableLogTest, TornTailIsTruncatedOnRecovery) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/site.wal";
  {
    FileStableLog log(path);
    ASSERT_TRUE(log.Open().ok());
    log.Append(LogRecord::Prepared(3, 0), true);
    log.Close();
  }
  // A crash mid-write leaves a partial frame: half a header.
  int fd = open(path.c_str(), O_WRONLY | O_APPEND);
  ASSERT_GE(fd, 0);
  const uint8_t garbage[6] = {0x10, 0, 0, 0, 0xde, 0xad};
  ASSERT_EQ(write(fd, garbage, sizeof(garbage)),
            static_cast<ssize_t>(sizeof(garbage)));
  close(fd);

  FileStableLog reopened(path);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.recovery_info().records_recovered, 1u);
  EXPECT_TRUE(reopened.recovery_info().tail_truncated);
  EXPECT_EQ(reopened.recovery_info().torn_bytes_discarded, 6u);
  // The truncated file accepts new appends cleanly.
  reopened.Append(LogRecord::Commit(3), true);
  reopened.Close();
  FileStableLog again(path);
  ASSERT_TRUE(again.Open().ok());
  EXPECT_EQ(again.recovery_info().records_recovered, 2u);
  EXPECT_FALSE(again.recovery_info().tail_truncated);
}

TEST(FileStableLogTest, CorruptFrameStopsRecoveryAtLastValidPrefix) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/site.wal";
  {
    FileStableLog log(path);
    ASSERT_TRUE(log.Open().ok());
    log.Append(LogRecord::Prepared(4, 0), true);
    log.Append(LogRecord::Commit(4), true);
    log.Close();
  }
  // Flip a byte in the *last* frame's payload; its CRC no longer matches.
  int fd = open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  off_t size = lseek(fd, 0, SEEK_END);
  ASSERT_GT(size, 0);
  uint8_t byte = 0;
  ASSERT_EQ(pread(fd, &byte, 1, size - 1), 1);
  byte ^= 0xff;
  ASSERT_EQ(pwrite(fd, &byte, 1, size - 1), 1);
  close(fd);

  FileStableLog reopened(path);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.recovery_info().records_recovered, 1u);
  EXPECT_TRUE(reopened.recovery_info().tail_truncated);
}

TEST(FileStableLogTest, AckedForcesSurviveAbruptClose) {
  // The crash-recovery contract: every append whose force was
  // *acknowledged* (Append returned) is in the recovered prefix, and the
  // recovered set is a prefix of the append order (no holes).
  std::string dir = MakeTempDir();
  std::string path = dir + "/site.wal";
  std::vector<uint64_t> acked_forced;
  {
    FileStableLog log(path);
    ASSERT_TRUE(log.Open().ok());
    acked_forced.push_back(log.Append(LogRecord::Prepared(9, 0), true));
    log.Append(LogRecord::End(8), false);
    acked_forced.push_back(log.Append(LogRecord::Commit(9), true));
    // Tail the write queue with records whose durability was never
    // acknowledged; the "crash" may or may not preserve them.
    log.Append(LogRecord::End(9), false);
    log.CloseAbruptly();
  }
  FileStableLog reopened(path);
  ASSERT_TRUE(reopened.Open().ok());
  std::vector<LogRecord> records = reopened.StableRecords();
  // Prefix property: recovered LSNs are exactly 1..k for some k.
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].lsn, static_cast<uint64_t>(i + 1));
  }
  // Superset property: k covers every acked forced append.
  for (uint64_t lsn : acked_forced) {
    EXPECT_LE(lsn, records.size());
  }
}

TEST(FileStableLogTest, ConcurrentForcesCoalesceIntoFewerFsyncs) {
  std::string dir = MakeTempDir();
  std::string path = dir + "/site.wal";
  GroupCommitConfig config;
  config.batch_window_us = 1000;
  config.queue_depth_trigger = 4;
  FileStableLog log(path, "wal", nullptr, config);
  ASSERT_TRUE(log.Open().ok());
  // Honor the concurrency contract the way LiveSite does: appends are
  // serialized by an "engine" mutex that the wait hooks release across
  // the durability wait, which is what lets concurrent forces coalesce.
  std::mutex engine_mu;
  log.SetWaitHooks([&engine_mu]() { engine_mu.unlock(); },
                   [&engine_mu]() { engine_mu.lock(); });

  constexpr int kThreads = 4;
  constexpr int kForcesPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, &engine_mu, t]() {
      for (int i = 0; i < kForcesPerThread; ++i) {
        TxnId txn = static_cast<TxnId>(t * kForcesPerThread + i + 1);
        std::lock_guard<std::mutex> lock(engine_mu);
        log.Append(LogRecord::Commit(txn), /*force=*/true);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  log.SetWaitHooks(nullptr, nullptr);

  EXPECT_EQ(log.stats().forced_appends,
            static_cast<uint64_t>(kThreads * kForcesPerThread));
  // Group commit: strictly fewer physical syncs than forces. With four
  // concurrent writers and a 1ms batch window this holds with enormous
  // margin (a serial fdatasync alone takes ~100us).
  EXPECT_LT(log.fsyncs(), static_cast<uint64_t>(kThreads * kForcesPerThread));
  log.Close();

  FileStableLog reopened(path);
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.recovery_info().records_recovered,
            static_cast<uint64_t>(kThreads * kForcesPerThread));
}

TEST(FileStableLogTest, RecoveryAtEveryTruncationOffsetKeepsLongestValidPrefix) {
  // Property: for *every* byte-length prefix of a valid log file, Open()
  // recovers exactly the frames that fit completely in the prefix, marks
  // the remainder torn, and a second Open() of the truncated result is a
  // fixed point (recovery is idempotent).
  std::string dir = MakeTempDir();
  std::string path = dir + "/site.wal";
  {
    FileStableLog log(path);
    ASSERT_TRUE(log.Open().ok());
    log.Append(LogRecord::Prepared(11, 0), true);
    log.Append(LogRecord::Commit(11), true);
    log.Append(LogRecord::End(11), true);
    log.Close();
  }
  // Read the file and compute the frame boundaries from the length
  // headers: [u32 len][u32 crc][payload].
  int fd = open(path.c_str(), O_RDONLY);
  ASSERT_GE(fd, 0);
  off_t sz = lseek(fd, 0, SEEK_END);
  ASSERT_GT(sz, 0);
  std::vector<uint8_t> bytes(static_cast<size_t>(sz));
  ASSERT_EQ(pread(fd, bytes.data(), bytes.size(), 0),
            static_cast<ssize_t>(bytes.size()));
  close(fd);
  std::vector<size_t> boundaries = {0};  // offsets where a frame ends
  size_t pos = 0;
  while (pos + 8 <= bytes.size()) {
    uint32_t len = static_cast<uint32_t>(bytes[pos]) |
                   static_cast<uint32_t>(bytes[pos + 1]) << 8 |
                   static_cast<uint32_t>(bytes[pos + 2]) << 16 |
                   static_cast<uint32_t>(bytes[pos + 3]) << 24;
    pos += 8 + len;
    ASSERT_LE(pos, bytes.size());
    boundaries.push_back(pos);
  }
  ASSERT_EQ(boundaries.size(), 4u);  // three records

  std::string cut = dir + "/cut.wal";
  for (size_t offset = 0; offset <= bytes.size(); ++offset) {
    int out = open(cut.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    ASSERT_GE(out, 0);
    ASSERT_EQ(write(out, bytes.data(), offset), static_cast<ssize_t>(offset));
    close(out);

    // Frames wholly inside the prefix survive; everything after is torn.
    uint64_t want_records = 0;
    size_t valid_prefix = 0;
    for (size_t i = 0; i < boundaries.size(); ++i) {
      if (boundaries[i] <= offset) {
        valid_prefix = boundaries[i];
        want_records = i;  // boundary i ends the i-th frame
      }
    }
    {
      FileStableLog log(cut);
      ASSERT_TRUE(log.Open().ok()) << "offset " << offset;
      EXPECT_EQ(log.recovery_info().records_recovered, want_records)
          << "offset " << offset;
      EXPECT_EQ(log.recovery_info().bytes_recovered, valid_prefix)
          << "offset " << offset;
      EXPECT_EQ(log.recovery_info().tail_truncated, offset != valid_prefix)
          << "offset " << offset;
      EXPECT_EQ(log.recovery_info().torn_bytes_discarded,
                offset - valid_prefix)
          << "offset " << offset;
      log.Close();
    }
    // Idempotence: the recovered file re-opens to the same record count
    // with nothing left to truncate.
    FileStableLog again(cut);
    ASSERT_TRUE(again.Open().ok()) << "offset " << offset;
    EXPECT_EQ(again.recovery_info().records_recovered, want_records)
        << "offset " << offset;
    EXPECT_FALSE(again.recovery_info().tail_truncated) << "offset " << offset;
    again.Close();
  }
}

TEST(FileStableLogTest, CrashTearsUnackedSuffixAtARandomByte) {
  // The live crash model: CloseAbruptly()/Crash() must never let an
  // in-flight batch become durable wholesale — the file is cut at a
  // random byte inside the unacknowledged suffix. Acked forces always
  // survive; the recovered set is always a clean prefix.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    std::string dir = MakeTempDir();
    std::string path = dir + "/site.wal";
    uint64_t acked = 0;
    {
      FileStableLog log(path);
      log.SetTornWriteSeed(seed);
      ASSERT_TRUE(log.Open().ok());
      acked = log.Append(LogRecord::Prepared(21, 0), true);
      // Queue unacknowledged work, then crash before any force waits on
      // it: these bytes are fair game for the tear.
      for (TxnId t = 22; t < 30; ++t) {
        log.Append(LogRecord::Commit(t), false);
      }
      log.CloseAbruptly();
    }
    FileStableLog reopened(path);
    ASSERT_TRUE(reopened.Open().ok());
    std::vector<LogRecord> records = reopened.StableRecords();
    ASSERT_GE(records.size(), acked) << "seed " << seed;
    for (size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].lsn, static_cast<uint64_t>(i + 1));
    }
    reopened.Close();
  }
}

TEST(FileStableLogTest, WaitHooksBracketTheDurabilityWait) {
  std::string dir = MakeTempDir();
  FileStableLog log(dir + "/site.wal");
  ASSERT_TRUE(log.Open().ok());
  int before = 0, after = 0;
  log.SetWaitHooks([&]() { ++before; }, [&]() { ++after; });
  log.Append(LogRecord::Commit(1), true);
  log.Append(LogRecord::End(1), false);  // non-forced: no wait, no hooks
  EXPECT_EQ(before, 1);
  EXPECT_EQ(after, 1);
  log.SetWaitHooks(nullptr, nullptr);
  log.Append(LogRecord::Commit(2), true);
  EXPECT_EQ(before, 1);
  log.Close();
}

}  // namespace
}  // namespace prany
