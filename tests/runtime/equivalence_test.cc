// Sim-vs-live equivalence: the same protocol state machines run behind
// both backends, so a failure-free single-transaction run must exchange
// the *same messages in the same per-link order* under the simulator and
// the live runtime. Global order differs (real concurrency), so the
// comparison is per directed link — exactly the order each FIFO channel
// guarantees.

#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "harness/system.h"
#include "runtime/live_system.h"

namespace prany {
namespace runtime {
namespace {

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "prany_eq_XXXXXX";
  char* dir = mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

using LinkKey = std::pair<SiteId, SiteId>;

/// Per-directed-link sequence of message descriptions, extracted from the
/// MSG_SEND events of a trace.
std::map<LinkKey, std::vector<std::string>> LinkSequences(
    const std::vector<TraceEvent>& events) {
  std::map<LinkKey, std::vector<std::string>> links;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceEventKind::kMsgSend) continue;
    std::string desc = e.label;
    if (!e.detail.empty()) desc += "(" + e.detail + ")";
    if (e.outcome.has_value()) {
      desc += *e.outcome == Outcome::kCommit ? "(commit)" : "(abort)";
    }
    links[{e.site, e.peer}].push_back(desc);
  }
  return links;
}

void CheckEquivalence(ProtocolKind kind, const std::map<SiteId, Vote>& votes,
                      Outcome expected) {
  // Simulated run.
  System sim_system;
  for (int i = 0; i < 3; ++i) sim_system.AddSite(kind, kind);
  sim_system.sim().trace().Enable();
  TxnId sim_txn = sim_system.Submit(0, {1, 2}, votes);
  sim_system.Run();
  const SigEvent* sim_decide = sim_system.history().FirstWhere(
      [&](const SigEvent& e) {
        return e.type == SigEventType::kCoordDecide && e.txn == sim_txn;
      });
  ASSERT_NE(sim_decide, nullptr);
  EXPECT_EQ(sim_decide->outcome, expected);
  auto sim_links = LinkSequences(sim_system.sim().trace().events());

  // Live run.
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem live(config);
  live.loop().trace().Enable();
  for (int i = 0; i < 3; ++i) live.AddSite(kind, kind);
  TxnId live_txn = live.Submit(0, {1, 2}, votes);
  std::optional<Outcome> outcome = live.Await(live_txn, 20'000'000);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, expected);
  ASSERT_TRUE(live.Quiesce(20'000'000));
  live.Stop();
  auto live_links = LinkSequences(live.loop().trace().events());

  EXPECT_EQ(sim_txn, live_txn);
  EXPECT_EQ(sim_links, live_links) << "protocol exchange diverged";
}

TEST(EquivalenceTest, PrNCommitExchangesIdenticalMessages) {
  CheckEquivalence(ProtocolKind::kPrN, {}, Outcome::kCommit);
}

TEST(EquivalenceTest, PrCCommitExchangesIdenticalMessages) {
  CheckEquivalence(ProtocolKind::kPrC, {}, Outcome::kCommit);
}

TEST(EquivalenceTest, PrACommitExchangesIdenticalMessages) {
  CheckEquivalence(ProtocolKind::kPrA, {}, Outcome::kCommit);
}

TEST(EquivalenceTest, PrAAbortExchangesIdenticalMessages) {
  CheckEquivalence(ProtocolKind::kPrA, {{1, Vote::kNo}}, Outcome::kAbort);
}

TEST(EquivalenceTest, PrCAbortExchangesIdenticalMessages) {
  CheckEquivalence(ProtocolKind::kPrC, {{1, Vote::kNo}}, Outcome::kAbort);
}

}  // namespace
}  // namespace runtime
}  // namespace prany
