#include "runtime/live_system.h"

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace prany {
namespace runtime {
namespace {

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "prany_live_XXXXXX";
  char* dir = mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

constexpr uint64_t kAwaitUs = 20'000'000;   // generous: CI boxes are slow
constexpr uint64_t kQuiesceUs = 20'000'000;

/// One commit and one abort through a three-site federation; full
/// correctness checks afterwards.
void RunCommitAndAbort(LiveSystem& system) {
  TxnId committed = system.Submit(0, {1, 2});
  std::optional<Outcome> outcome = system.Await(committed, kAwaitUs);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, Outcome::kCommit);

  TxnId aborted = system.Submit(0, {1, 2}, {{1, Vote::kNo}});
  outcome = system.Await(aborted, kAwaitUs);
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, Outcome::kAbort);

  ASSERT_TRUE(system.Quiesce(kQuiesceUs));
  EXPECT_TRUE(system.CheckAtomicity().ok());
  EXPECT_TRUE(system.CheckSafeState().ok());
  EXPECT_TRUE(system.CheckOperational().ok());
}

struct ProtocolCase {
  const char* name;
  ProtocolKind participant;
  ProtocolKind coordinator;
};

class LiveSystemProtocolTest : public ::testing::TestWithParam<ProtocolCase> {
};

TEST_P(LiveSystemProtocolTest, CommitAndAbortDecideCorrectly) {
  const ProtocolCase& pc = GetParam();
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(pc.participant, pc.coordinator);
  }
  RunCommitAndAbort(system);
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, LiveSystemProtocolTest,
    ::testing::Values(
        ProtocolCase{"PrN", ProtocolKind::kPrN, ProtocolKind::kPrN},
        ProtocolCase{"PrA", ProtocolKind::kPrA, ProtocolKind::kPrA},
        ProtocolCase{"PrC", ProtocolKind::kPrC, ProtocolKind::kPrC},
        ProtocolCase{"U2PC", ProtocolKind::kPrN, ProtocolKind::kU2PC},
        ProtocolCase{"C2PC", ProtocolKind::kPrN, ProtocolKind::kC2PC},
        ProtocolCase{"PrAny", ProtocolKind::kPrN, ProtocolKind::kPrAny}),
    [](const ::testing::TestParamInfo<ProtocolCase>& info) {
      return std::string(info.param.name);
    });

TEST(LiveSystemTest, PrAnyCoordinatesMixedParticipants) {
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrA, ProtocolKind::kPrAny);
  system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrAny);
  RunCommitAndAbort(system);
}

TEST(LiveSystemTest, ConcurrentClientsAllDecide) {
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrC);
  }
  constexpr int kClients = 4;
  constexpr int kTxnsPerClient = 10;
  std::vector<std::thread> clients;
  std::vector<int> commits(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&system, &commits, c]() {
      for (int i = 0; i < kTxnsPerClient; ++i) {
        SiteId coord = static_cast<SiteId>(c % 3);
        SiteId p1 = (coord + 1) % 3;
        SiteId p2 = (coord + 2) % 3;
        TxnId txn = system.Submit(coord, {p1, p2});
        std::optional<Outcome> outcome = system.Await(txn, kAwaitUs);
        if (outcome.has_value() && *outcome == Outcome::kCommit) {
          ++commits[c];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(commits[c], kTxnsPerClient) << "client " << c;
  }
  ASSERT_TRUE(system.Quiesce(kQuiesceUs));
  EXPECT_TRUE(system.CheckAtomicity().ok());
  EXPECT_TRUE(system.CheckSafeState().ok());
  EXPECT_TRUE(system.CheckOperational().ok());
}

/// Runs `txns` committed transactions under a homogeneous protocol and
/// returns total forced appends across all site WALs.
uint64_t ForcedAppendsFor(ProtocolKind kind, int txns) {
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) system.AddSite(kind, kind);
  for (int i = 0; i < txns; ++i) {
    TxnId txn = system.Submit(0, {1, 2});
    std::optional<Outcome> outcome = system.Await(txn, kAwaitUs);
    EXPECT_TRUE(outcome.has_value() && *outcome == Outcome::kCommit);
  }
  EXPECT_TRUE(system.Quiesce(kQuiesceUs));
  uint64_t forced = 0;
  for (SiteId s = 0; s < 3; ++s) {
    forced += system.live_site(s)->wal()->stats().forced_appends;
  }
  return forced;
}

TEST(LiveSystemTest, PrCForcesStrictlyFewerWritesThanPrN) {
  // The paper's cost argument, measured on the real WAL: presumed commit
  // skips forced writes that presumed nothing must make.
  constexpr int kTxns = 10;
  uint64_t prc = ForcedAppendsFor(ProtocolKind::kPrC, kTxns);
  uint64_t prn = ForcedAppendsFor(ProtocolKind::kPrN, kTxns);
  EXPECT_LT(prc, prn) << "PrC=" << prc << " PrN=" << prn;
}

TEST(LiveSystemTest, HistorySurvivesStopAndWalsAreOnDisk) {
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrC);
  }
  TxnId txn = system.Submit(0, {1, 2});
  ASSERT_TRUE(system.Await(txn, kAwaitUs).has_value());
  ASSERT_TRUE(system.Quiesce(kQuiesceUs));
  std::string wal_path = system.live_site(1)->wal()->path();
  system.Stop();
  EXPECT_FALSE(system.history().events().empty());

  // A fresh FileStableLog can recover the participant's records.
  FileStableLog recovered(wal_path);
  ASSERT_TRUE(recovered.Open().ok());
  EXPECT_GT(recovered.recovery_info().records_recovered, 0u);
}

}  // namespace
}  // namespace runtime
}  // namespace prany
