#include "runtime/live_loop.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>

#include <gtest/gtest.h>

namespace prany {
namespace runtime {
namespace {

TEST(LiveEventLoopTest, NowAdvancesMonotonically) {
  LiveEventLoop loop;
  SimTime a = loop.Now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  SimTime b = loop.Now();
  EXPECT_GE(b, a + 1000);  // at least 1ms of the 2ms sleep visible
}

TEST(LiveEventLoopTest, ScheduledCallbackFires) {
  LiveEventLoop loop;
  loop.Start();
  std::mutex mu;
  std::condition_variable cv;
  bool fired = false;
  loop.Schedule(1000, [&]() {
    std::lock_guard<std::mutex> lock(mu);
    fired = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  EXPECT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return fired; }));
  loop.Stop();
}

TEST(LiveEventLoopTest, CallbacksFireInDeadlineOrder) {
  LiveEventLoop loop;
  loop.Start();
  std::mutex mu;
  std::condition_variable cv;
  std::vector<int> order;
  auto push = [&](int v) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(v);
    cv.notify_all();
  };
  // Scheduled out of order; must fire in deadline order.
  loop.Schedule(30'000, [&]() { push(3); });
  loop.Schedule(10'000, [&]() { push(1); });
  loop.Schedule(20'000, [&]() { push(2); });
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return order.size() == 3; }));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  loop.Stop();
}

TEST(LiveEventLoopTest, CancelledTimerNeverFires) {
  LiveEventLoop loop;
  loop.Start();
  std::atomic<bool> fired{false};
  EventId id = loop.Schedule(50'000, [&]() { fired.store(true); });
  loop.Cancel(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(fired.load());
  EXPECT_EQ(loop.PendingTimers(), 0u);
  loop.Stop();
}

TEST(LiveEventLoopTest, BoundCallbackRunsThroughExecutor) {
  LiveEventLoop loop;
  loop.Start();
  std::mutex mu;
  std::condition_variable cv;
  std::deque<LiveEventLoop::Task> posted;
  LiveEventLoop::Executor executor = [&](LiveEventLoop::Task task) {
    std::lock_guard<std::mutex> lock(mu);
    posted.push_back(std::move(task));
    cv.notify_all();
  };
  std::atomic<bool> fired{false};
  LiveEventLoop::BindThreadExecutor(&executor);
  loop.Schedule(0, [&]() { fired.store(true); });
  LiveEventLoop::BindThreadExecutor(nullptr);

  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return !posted.empty(); }));
  EXPECT_FALSE(fired.load());  // not run until the executor runs it
  LiveEventLoop::Task task = std::move(posted.front());
  posted.pop_front();
  lock.unlock();
  task();
  EXPECT_TRUE(fired.load());
  loop.Stop();
}

TEST(LiveEventLoopTest, CancelAfterDispatchStillSuppressesCallback) {
  // The strong-cancel guarantee: even when the timer thread has already
  // posted the callback to the executor, a Cancel() issued before the
  // executor runs it wins.
  LiveEventLoop loop;
  loop.Start();
  std::mutex mu;
  std::condition_variable cv;
  std::deque<LiveEventLoop::Task> posted;
  LiveEventLoop::Executor executor = [&](LiveEventLoop::Task task) {
    std::lock_guard<std::mutex> lock(mu);
    posted.push_back(std::move(task));
    cv.notify_all();
  };
  std::atomic<bool> fired{false};
  LiveEventLoop::BindThreadExecutor(&executor);
  EventId id = loop.Schedule(0, [&]() { fired.store(true); });
  LiveEventLoop::BindThreadExecutor(nullptr);

  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&] { return !posted.empty(); }));
  loop.Cancel(id);  // after dispatch, before execution
  LiveEventLoop::Task task = std::move(posted.front());
  posted.pop_front();
  lock.unlock();
  task();
  EXPECT_FALSE(fired.load());
  loop.Stop();
}

TEST(LiveEventLoopTest, StopDropsPendingTimers) {
  LiveEventLoop loop;
  loop.Start();
  std::atomic<bool> fired{false};
  loop.Schedule(60'000'000, [&]() { fired.store(true); });  // 60s out
  loop.Stop();
  EXPECT_FALSE(fired.load());
}

}  // namespace
}  // namespace runtime
}  // namespace prany
