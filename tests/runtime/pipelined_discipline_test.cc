// WAL-discipline oracles over live traces with decision pipelining on.
//
// Pipelining moves the protocol's sends off the worker thread and into
// the WAL sync thread's post-fdatasync continuation: the vote leaves in
// the PREPARED record's continuation, the decision in the decision
// record's. The R1-R4 rules (history/wal_discipline_checker.h) are
// exactly the orderings this restructuring could break — a decision
// message outrunning its force, a vote outrunning its PREPARED — so each
// protocol's live trace is run through the checker with pipelining
// explicitly enabled, and once with it disabled as the control.
//
// PrC is the interesting commit path: its abort decisions are legally
// non-forced (initiation-without-commit already means abort at
// recovery), so the abort DECISION may overlap any in-flight batch — R1
// only binds the *forced* records, and the checker must accept that
// overlap while still holding PrN/PrA to force-before-notify.

#include <cstdlib>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "history/wal_discipline_checker.h"
#include "runtime/live_system.h"
#include "runtime/load_gen.h"

namespace prany {
namespace runtime {
namespace {

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "prany_pipe_XXXXXX";
  char* dir = mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

struct PipelineCase {
  const char* name;
  ProtocolKind participant;
  ProtocolKind coordinator;
  bool pipeline_forces;
};

class PipelinedDisciplineTest
    : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(PipelinedDisciplineTest, TracesHoldR1ThroughR4) {
  const PipelineCase& pc = GetParam();

  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  config.pipeline_forces = pc.pipeline_forces;
  LiveSystem system(config);
  system.loop().trace().Enable();
  constexpr int kSites = 3;
  for (int i = 0; i < kSites; ++i) {
    system.AddSite(pc.participant, pc.coordinator);
  }

  LoadGenConfig lg;
  lg.clients = 6;
  lg.duration_us = 400'000;
  lg.participants_per_txn = 2;
  // Aborts matter: PrC's non-forced abort decision and PrA's unlogged
  // abort are the paths where a too-strict checker would false-positive
  // and a too-lax pipeline would hide a real inversion.
  lg.abort_fraction = 0.25;
  lg.dual_role_fraction = 0.3;
  lg.await_timeout_us = 2'000'000;
  LoadGen gen(&system, lg);
  LoadGenReport report = gen.Run();
  ASSERT_TRUE(system.Quiesce(20'000'000));

  EXPECT_GT(report.committed, 0u);
  EXPECT_GT(report.aborted, 0u);

  AtomicityReport atomicity = system.CheckAtomicity();
  EXPECT_TRUE(atomicity.ok()) << atomicity.ToString();
  SafeStateReport safe = system.CheckSafeState();
  EXPECT_TRUE(safe.ok()) << safe.ToString();
  OperationalReport operational = system.CheckOperational();
  EXPECT_TRUE(operational.ok()) << operational.ToString();

  std::map<SiteId, ProtocolKind> protocols;
  for (SiteId s = 0; s < kSites; ++s) {
    protocols[s] = system.site(s)->participant_protocol();
  }
  WalDisciplineReport wal = WalDisciplineChecker::Check(
      system.loop().trace().events(), protocols);
  EXPECT_TRUE(wal.ok()) << wal.ToString();
  EXPECT_GT(wal.events_checked, 0u);

  system.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    Presumptions, PipelinedDisciplineTest,
    ::testing::Values(
        PipelineCase{"PrN", ProtocolKind::kPrN, ProtocolKind::kPrN, true},
        PipelineCase{"PrA", ProtocolKind::kPrA, ProtocolKind::kPrA, true},
        PipelineCase{"PrC", ProtocolKind::kPrC, ProtocolKind::kPrC, true},
        PipelineCase{"PrAny", ProtocolKind::kPrN, ProtocolKind::kPrAny,
                     true},
        PipelineCase{"PrN_blocking", ProtocolKind::kPrN, ProtocolKind::kPrN,
                     false},
        PipelineCase{"PrC_blocking", ProtocolKind::kPrC, ProtocolKind::kPrC,
                     false}),
    [](const ::testing::TestParamInfo<PipelineCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace runtime
}  // namespace prany
