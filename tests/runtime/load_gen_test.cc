#include "runtime/load_gen.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace prany {
namespace runtime {
namespace {

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "prany_gen_XXXXXX";
  char* dir = mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

TEST(LoadGenTest, ClosedLoopCommitsAndRecordsLatency) {
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrC);
  }
  LoadGenConfig gen_config;
  gen_config.clients = 4;
  gen_config.duration_us = 300'000;
  gen_config.participants_per_txn = 2;
  LoadGen gen(&system, gen_config);
  LoadGenReport report = gen.Run();

  EXPECT_GT(report.submitted, 0u);
  EXPECT_GT(report.committed, 0u);
  EXPECT_EQ(report.aborted, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  EXPECT_GT(report.commits_per_sec(), 0.0);

  ASSERT_TRUE(system.Quiesce(20'000'000));
  EXPECT_TRUE(system.CheckAtomicity().ok());
  EXPECT_TRUE(system.CheckSafeState().ok());
  EXPECT_TRUE(system.CheckOperational().ok());

  DistributionStats latency =
      system.metrics().Summarize("livegen.latency_us");
  EXPECT_EQ(latency.count, report.committed);
  EXPECT_GT(latency.p50, 0.0);
}

TEST(LoadGenTest, AbortFractionProducesAborts) {
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrA, ProtocolKind::kPrA);
  }
  LoadGenConfig gen_config;
  gen_config.clients = 2;
  gen_config.duration_us = 300'000;
  gen_config.abort_fraction = 1.0;  // every transaction plans a no vote
  LoadGen gen(&system, gen_config);
  LoadGenReport report = gen.Run();

  EXPECT_GT(report.aborted, 0u);
  EXPECT_EQ(report.committed, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  ASSERT_TRUE(system.Quiesce(20'000'000));
  EXPECT_TRUE(system.CheckAtomicity().ok());
}

TEST(LoadGenTest, DualRoleFractionMakesCoordinatorsParticipate) {
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrN);
  }
  LoadGenConfig gen_config;
  gen_config.clients = 3;
  gen_config.duration_us = 300'000;
  gen_config.participants_per_txn = 2;
  gen_config.dual_role_fraction = 1.0;  // every coordinator participates
  gen_config.abort_fraction = 0.2;      // some self no-votes too
  LoadGen gen(&system, gen_config);
  LoadGenReport report = gen.Run();

  EXPECT_GT(report.submitted, 0u);
  EXPECT_EQ(report.dual_role_submitted, report.submitted);
  EXPECT_GT(report.committed, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  ASSERT_TRUE(system.Quiesce(20'000'000));
  EXPECT_TRUE(system.CheckAtomicity().ok())
      << system.CheckAtomicity().ToString();
  EXPECT_TRUE(system.CheckSafeState().ok());
  EXPECT_TRUE(system.CheckOperational().ok())
      << system.CheckOperational().ToString();
}

TEST(LoadGenTest, ForcedAwaitTimeoutsAreCountedAndResolve) {
  // Regression for the Await-timeout accounting: shrink the await timeout
  // far below the decision latency (a wide group-commit window guarantees
  // every forced write eats >= 5ms) so (nearly) every client await expires.
  // Timeouts must be counted, every submitted transaction must still
  // resolve consistently, and no client may wedge.
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  config.group_commit.batch_window_us = 5'000;
  config.group_commit.queue_depth_trigger = 1'000'000;  // window only
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrC);
  }
  LoadGenConfig gen_config;
  gen_config.clients = 4;
  gen_config.duration_us = 300'000;
  gen_config.participants_per_txn = 2;
  gen_config.abort_fraction = 0.2;
  gen_config.await_timeout_us = 200;  // far below the forced-write latency
  LoadGen gen(&system, gen_config);
  LoadGenReport report = gen.Run();

  EXPECT_GT(report.submitted, 0u);
  EXPECT_GT(report.timeouts, 0u);
  // Every submission is accounted exactly once: committed, aborted, or
  // timed out.
  EXPECT_EQ(report.submitted,
            report.committed + report.aborted + report.timeouts);
  // A timeout abandons the await, not the transaction: once the system
  // drains, every submitted transaction has a coordinator decision.
  ASSERT_TRUE(system.Quiesce(20'000'000));
  uint64_t decides = 0;
  for (const SigEvent& event : system.history().events()) {
    if (event.type == SigEventType::kCoordDecide) ++decides;
  }
  EXPECT_EQ(decides, report.submitted);
  EXPECT_TRUE(system.CheckAtomicity().ok())
      << system.CheckAtomicity().ToString();
  EXPECT_TRUE(system.CheckSafeState().ok());
  EXPECT_TRUE(system.CheckOperational().ok())
      << system.CheckOperational().ToString();
  // The latency distribution only records awaits that saw the decision.
  DistributionStats latency =
      system.metrics().Summarize("livegen.latency_us");
  EXPECT_EQ(latency.count, report.committed + report.aborted);
}

TEST(LoadGenTest, DroppedSubmissionDoesNotCampOnTheAwaitTimeout) {
  // Regression: a submission that lands on a down coordinator is dropped
  // by the system (no decision will ever be recorded for it), but the
  // client was not told — it camped on the full await timeout for every
  // drop, so under the crash bench each drop wedged a closed-loop client
  // for seconds and was tallied as an ordinary "timeout". The whole load
  // below runs while the only coordinator is down: pre-fix the first
  // submission parks 12s and the run cannot finish in the bound asserted.
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrA, ProtocolKind::kPrA);
  }
  std::thread crasher([&]() { system.CrashRestartSite(0, 2'000'000); });
  while (system.site(0)->IsUp()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  LoadGenConfig gen_config;
  gen_config.clients = 1;  // client 0 coordinates at site 0 — the down one
  gen_config.duration_us = 300'000;
  gen_config.participants_per_txn = 2;
  gen_config.await_timeout_us = 12'000'000;
  LoadGen gen(&system, gen_config);
  auto t0 = std::chrono::steady_clock::now();
  LoadGenReport report = gen.Run();
  double wall = std::chrono::duration_cast<std::chrono::duration<double>>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  crasher.join();

  EXPECT_GT(report.submitted, 0u);
  // The run must end with the configured duration, not with the await
  // timeout: no client may camp on a transaction the system dropped.
  EXPECT_LT(wall, 5.0);
  // Drops are accounted distinctly — they are refusals, not slow
  // decisions — and every submission is still counted exactly once.
  EXPECT_GT(report.dropped, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  EXPECT_EQ(report.submitted, report.committed + report.aborted +
                                  report.timeouts + report.dropped);
  ASSERT_TRUE(system.Quiesce(20'000'000));
  EXPECT_TRUE(system.CheckAtomicity().ok())
      << system.CheckAtomicity().ToString();
}

TEST(LoadGenTest, ElapsedClockStopsWhenTheRunStops) {
  // Regression: elapsed_seconds used to be measured after joining the
  // client threads, so a client parked in a final Await inflated the
  // denominator and deflated commits_per_sec. The clock must stop when
  // running_ flips false, not when the drain finishes.
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrC);
  }
  LoadGenConfig gen_config;
  gen_config.clients = 2;
  gen_config.duration_us = 60'000'000;  // ended by Stop() below
  gen_config.await_timeout_us = 30'000'000;
  LoadGen gen(&system, gen_config);
  LoadGenReport report;
  std::thread run([&]() { report = gen.Run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  gen.Stop();
  run.join();

  EXPECT_GT(report.submitted, 0u);
  // The run lasted ~0.3s of wall clock; anywhere near the configured 60s
  // duration (or the 30s await timeout) means the clock kept ticking
  // through the shutdown drain. Generous bound for loaded CI machines.
  EXPECT_GE(report.elapsed_seconds, 0.25);
  EXPECT_LT(report.elapsed_seconds, 10.0);
  ASSERT_TRUE(system.Quiesce(20'000'000));
  EXPECT_TRUE(system.CheckAtomicity().ok());
}

}  // namespace
}  // namespace runtime
}  // namespace prany
