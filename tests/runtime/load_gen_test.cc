#include "runtime/load_gen.h"

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>

#include <gtest/gtest.h>

namespace prany {
namespace runtime {
namespace {

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "prany_gen_XXXXXX";
  char* dir = mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

TEST(LoadGenTest, ClosedLoopCommitsAndRecordsLatency) {
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrC);
  }
  LoadGenConfig gen_config;
  gen_config.clients = 4;
  gen_config.duration_us = 300'000;
  gen_config.participants_per_txn = 2;
  LoadGen gen(&system, gen_config);
  LoadGenReport report = gen.Run();

  EXPECT_GT(report.submitted, 0u);
  EXPECT_GT(report.committed, 0u);
  EXPECT_EQ(report.aborted, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  EXPECT_GT(report.commits_per_sec(), 0.0);

  ASSERT_TRUE(system.Quiesce(20'000'000));
  EXPECT_TRUE(system.CheckAtomicity().ok());
  EXPECT_TRUE(system.CheckSafeState().ok());
  EXPECT_TRUE(system.CheckOperational().ok());

  DistributionStats latency =
      system.metrics().Summarize("livegen.latency_us");
  EXPECT_EQ(latency.count, report.committed);
  EXPECT_GT(latency.p50, 0.0);
}

TEST(LoadGenTest, AbortFractionProducesAborts) {
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrA, ProtocolKind::kPrA);
  }
  LoadGenConfig gen_config;
  gen_config.clients = 2;
  gen_config.duration_us = 300'000;
  gen_config.abort_fraction = 1.0;  // every transaction plans a no vote
  LoadGen gen(&system, gen_config);
  LoadGenReport report = gen.Run();

  EXPECT_GT(report.aborted, 0u);
  EXPECT_EQ(report.committed, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  ASSERT_TRUE(system.Quiesce(20'000'000));
  EXPECT_TRUE(system.CheckAtomicity().ok());
}

TEST(LoadGenTest, DualRoleFractionMakesCoordinatorsParticipate) {
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrN, ProtocolKind::kPrN);
  }
  LoadGenConfig gen_config;
  gen_config.clients = 3;
  gen_config.duration_us = 300'000;
  gen_config.participants_per_txn = 2;
  gen_config.dual_role_fraction = 1.0;  // every coordinator participates
  gen_config.abort_fraction = 0.2;      // some self no-votes too
  LoadGen gen(&system, gen_config);
  LoadGenReport report = gen.Run();

  EXPECT_GT(report.submitted, 0u);
  EXPECT_EQ(report.dual_role_submitted, report.submitted);
  EXPECT_GT(report.committed, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  ASSERT_TRUE(system.Quiesce(20'000'000));
  EXPECT_TRUE(system.CheckAtomicity().ok())
      << system.CheckAtomicity().ToString();
  EXPECT_TRUE(system.CheckSafeState().ok());
  EXPECT_TRUE(system.CheckOperational().ok())
      << system.CheckOperational().ToString();
}

TEST(LoadGenTest, ElapsedClockStopsWhenTheRunStops) {
  // Regression: elapsed_seconds used to be measured after joining the
  // client threads, so a client parked in a final Await inflated the
  // denominator and deflated commits_per_sec. The clock must stop when
  // running_ flips false, not when the drain finishes.
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrC);
  }
  LoadGenConfig gen_config;
  gen_config.clients = 2;
  gen_config.duration_us = 60'000'000;  // ended by Stop() below
  gen_config.await_timeout_us = 30'000'000;
  LoadGen gen(&system, gen_config);
  LoadGenReport report;
  std::thread run([&]() { report = gen.Run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  gen.Stop();
  run.join();

  EXPECT_GT(report.submitted, 0u);
  // The run lasted ~0.3s of wall clock; anywhere near the configured 60s
  // duration (or the 30s await timeout) means the clock kept ticking
  // through the shutdown drain. Generous bound for loaded CI machines.
  EXPECT_GE(report.elapsed_seconds, 0.25);
  EXPECT_LT(report.elapsed_seconds, 10.0);
  ASSERT_TRUE(system.Quiesce(20'000'000));
  EXPECT_TRUE(system.CheckAtomicity().ok());
}

}  // namespace
}  // namespace runtime
}  // namespace prany
