#include "runtime/load_gen.h"

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace prany {
namespace runtime {
namespace {

std::string MakeTempDir() {
  std::string templ = ::testing::TempDir() + "prany_gen_XXXXXX";
  char* dir = mkdtemp(templ.data());
  EXPECT_NE(dir, nullptr);
  return templ;
}

TEST(LoadGenTest, ClosedLoopCommitsAndRecordsLatency) {
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrC, ProtocolKind::kPrC);
  }
  LoadGenConfig gen_config;
  gen_config.clients = 4;
  gen_config.duration_us = 300'000;
  gen_config.participants_per_txn = 2;
  LoadGen gen(&system, gen_config);
  LoadGenReport report = gen.Run();

  EXPECT_GT(report.submitted, 0u);
  EXPECT_GT(report.committed, 0u);
  EXPECT_EQ(report.aborted, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  EXPECT_GT(report.commits_per_sec(), 0.0);

  ASSERT_TRUE(system.Quiesce(20'000'000));
  EXPECT_TRUE(system.CheckAtomicity().ok());
  EXPECT_TRUE(system.CheckSafeState().ok());
  EXPECT_TRUE(system.CheckOperational().ok());

  DistributionStats latency =
      system.metrics().Summarize("livegen.latency_us");
  EXPECT_EQ(latency.count, report.committed);
  EXPECT_GT(latency.p50, 0.0);
}

TEST(LoadGenTest, AbortFractionProducesAborts) {
  LiveSystemConfig config;
  config.log_dir = MakeTempDir();
  LiveSystem system(config);
  for (int i = 0; i < 3; ++i) {
    system.AddSite(ProtocolKind::kPrA, ProtocolKind::kPrA);
  }
  LoadGenConfig gen_config;
  gen_config.clients = 2;
  gen_config.duration_us = 300'000;
  gen_config.abort_fraction = 1.0;  // every transaction plans a no vote
  LoadGen gen(&system, gen_config);
  LoadGenReport report = gen.Run();

  EXPECT_GT(report.aborted, 0u);
  EXPECT_EQ(report.committed, 0u);
  EXPECT_EQ(report.timeouts, 0u);
  ASSERT_TRUE(system.Quiesce(20'000'000));
  EXPECT_TRUE(system.CheckAtomicity().ok());
}

}  // namespace
}  // namespace runtime
}  // namespace prany
